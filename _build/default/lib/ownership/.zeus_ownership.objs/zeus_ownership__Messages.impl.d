lib/ownership/messages.ml: Format Ots Replicas Types Value Zeus_net Zeus_store
