lib/ownership/messages.mli: Format Ots Replicas Types Value Zeus_net Zeus_store
