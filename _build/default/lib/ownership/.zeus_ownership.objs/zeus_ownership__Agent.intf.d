lib/ownership/agent.mli: Directory Messages Ots Replicas Table Types Zeus_membership Zeus_net Zeus_sim Zeus_store
