lib/ownership/directory.mli: Messages Ots Replicas Types Zeus_store
