type t = {
  key : Types.key;
  mutable role : Types.role;
  mutable t_state : Types.t_state;
  mutable t_version : int;
  mutable data : Value.t;
  mutable o_state : Types.o_state;
  mutable o_ts : Ots.t;
  mutable o_replicas : Replicas.t option;
  mutable lock_thread : int option;
  mutable last_writer_thread : int;
  mutable pending_rc : int;
}

let create ~key ~role ?(version = 0) ?(o_ts = Ots.zero) data =
  {
    key;
    role;
    t_state = Types.T_valid;
    t_version = version;
    data;
    o_state = Types.O_valid;
    o_ts;
    o_replicas = None;
    lock_thread = None;
    last_writer_thread = -1;
    pending_rc = 0;
  }

let is_owner t = t.role = Types.Owner

let can_lock t ~thread =
  (match t.lock_thread with None -> true | Some holder -> holder = thread)
  && (t.pending_rc = 0 || t.last_writer_thread = thread)

let lock t ~thread =
  assert (can_lock t ~thread);
  t.lock_thread <- Some thread

let unlock t ~thread =
  match t.lock_thread with
  | Some holder when holder = thread -> t.lock_thread <- None
  | Some _ | None -> ()

let pp ppf t =
  Format.fprintf ppf "#%d %a t=%a v=%d o=%a ts=%a rc=%d" t.key Types.pp_role t.role
    Types.pp_t_state t.t_state t.t_version Types.pp_o_state t.o_state Ots.pp t.o_ts
    t.pending_rc
