(** Object values are opaque byte strings (the datastore stores memory
    objects, §7).  These helpers encode the small records the benchmarks
    store without pulling in a serialization library. *)

type t = bytes

val empty : t
val of_string : string -> t
val to_string : t -> string
val of_int : int -> t
val to_int : t -> int

val of_ints : int list -> t
val to_ints : t -> int list

val padded : int list -> size:int -> t
(** [padded fields ~size] encodes [fields] then pads with zero bytes up to
    [size] — used to model the paper's large objects (e.g. 400 B cellular
    contexts) while keeping the fields decodable. *)

val size : t -> int
val equal : t -> t -> bool
