type t = { version : int; node : Types.node_id }

let zero = { version = 0; node = -1 }

let compare a b =
  let c = Stdlib.compare a.version b.version in
  if c <> 0 then c else Stdlib.compare a.node b.node

let ( > ) a b = compare a b > 0
let ( >= ) a b = compare a b >= 0
let equal a b = compare a b = 0
let next ts ~node = { version = ts.version + 1; node }
let pp ppf t = Format.fprintf ppf "<%d,n%d>" t.version t.node
