(** The [o_replicas] metadata: which node owns an object and which nodes
    hold reader replicas (§4).  Stored at the directory and at the owner. *)

type t = { owner : Types.node_id option; readers : Types.node_id list }

val v : owner:Types.node_id -> readers:Types.node_id list -> t
val no_owner : readers:Types.node_id list -> t

val all : t -> Types.node_id list
(** Owner (if any) followed by readers, no duplicates. *)

val is_replica : t -> Types.node_id -> bool
val is_owner : t -> Types.node_id -> bool
val is_reader : t -> Types.node_id -> bool
val count : t -> int

val promote : t -> new_owner:Types.node_id -> t
(** Ownership transfer: [new_owner] becomes owner; the previous owner (if
    any, and if distinct) is demoted to reader; [new_owner] is removed from
    the readers. *)

val add_reader : t -> Types.node_id -> t
val remove_reader : t -> Types.node_id -> t

val drop_dead : t -> live:(Types.node_id -> bool) -> t
(** Remove non-live nodes (membership reconfiguration, §4.1). *)

val pp : Format.formatter -> t -> unit
