lib/store/types.mli: Format Zeus_net
