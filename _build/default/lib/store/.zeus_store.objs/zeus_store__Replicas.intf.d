lib/store/replicas.mli: Format Types
