lib/store/obj.mli: Format Ots Replicas Types Value
