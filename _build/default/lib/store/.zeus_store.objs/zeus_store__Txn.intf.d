lib/store/txn.mli: Format Table Types Value
