lib/store/replicas.ml: Format List Types
