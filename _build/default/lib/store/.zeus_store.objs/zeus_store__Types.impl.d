lib/store/types.ml: Format Zeus_net
