lib/store/value.ml: Bytes Int64 List
