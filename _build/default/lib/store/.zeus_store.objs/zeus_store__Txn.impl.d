lib/store/txn.ml: Bytes Format Hashtbl List Obj Table Types Value
