lib/store/ots.ml: Format Stdlib Types
