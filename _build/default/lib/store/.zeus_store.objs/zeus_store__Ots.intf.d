lib/store/ots.mli: Format Types
