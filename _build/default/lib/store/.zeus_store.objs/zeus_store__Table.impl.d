lib/store/table.ml: Hashtbl Obj Types
