lib/store/value.mli:
