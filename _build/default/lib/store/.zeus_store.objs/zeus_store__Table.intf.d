lib/store/table.mli: Obj Types
