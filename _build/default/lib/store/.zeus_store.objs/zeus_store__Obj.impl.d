lib/store/obj.ml: Format Ots Replicas Types Value
