(** One node's in-memory object table: every object for which the node is
    owner or reader.  Non-replica objects have no entry. *)

type t

val create : node:Types.node_id -> t
val node : t -> Types.node_id
val find : t -> Types.key -> Obj.t option
val mem : t -> Types.key -> bool
val get : t -> Types.key -> Obj.t
(** @raise Not_found when the node is a non-replica for the key. *)

val install : t -> Obj.t -> unit
(** Insert or replace the node's copy of an object. *)

val remove : t -> Types.key -> unit
val size : t -> int
val iter : t -> (Obj.t -> unit) -> unit
val keys : t -> Types.key list
