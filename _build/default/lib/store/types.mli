(** Shared store vocabulary: keys, states and access levels (§4, §5). *)

type key = int

type node_id = Zeus_net.Msg.node_id

(** Ownership state of an object at an arbiter (§4). *)
type o_state =
  | O_valid
  | O_invalid  (** arbitration of an ownership request is pending *)
  | O_request  (** this node has an outstanding request for the object *)
  | O_drive    (** this directory node is driving a request *)

(** Transactional state of a replica's copy (§5). *)
type t_state =
  | T_valid
  | T_invalid  (** follower: a reliable commit is pending *)
  | T_write    (** owner: locally committed, reliable commit in flight *)

(** Access level of this node for an object (non-replicas simply have no
    entry in the table). *)
type role = Owner | Reader

val pp_o_state : Format.formatter -> o_state -> unit
val pp_t_state : Format.formatter -> t_state -> unit
val pp_role : Format.formatter -> role -> unit
