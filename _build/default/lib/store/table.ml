type t = { node : Types.node_id; objects : (Types.key, Obj.t) Hashtbl.t }

let create ~node = { node; objects = Hashtbl.create 1024 }
let node t = t.node
let find t key = Hashtbl.find_opt t.objects key
let mem t key = Hashtbl.mem t.objects key
let get t key = match find t key with Some o -> o | None -> raise Not_found
let install t obj = Hashtbl.replace t.objects obj.Obj.key obj
let remove t key = Hashtbl.remove t.objects key
let size t = Hashtbl.length t.objects
let iter t fn = Hashtbl.iter (fun _ o -> fn o) t.objects
let keys t = Hashtbl.fold (fun k _ acc -> k :: acc) t.objects []
