type t = { owner : Types.node_id option; readers : Types.node_id list }

let v ~owner ~readers = { owner = Some owner; readers = List.filter (fun r -> r <> owner) readers }
let no_owner ~readers = { owner = None; readers }

let all t =
  match t.owner with
  | Some o -> o :: List.filter (fun r -> r <> o) t.readers
  | None -> t.readers

let is_owner t n = t.owner = Some n
let is_reader t n = List.mem n t.readers
let is_replica t n = is_owner t n || is_reader t n
let count t = List.length (all t)

let promote t ~new_owner =
  let readers =
    let demoted = match t.owner with Some o when o <> new_owner -> [ o ] | _ -> [] in
    demoted @ List.filter (fun r -> r <> new_owner) t.readers
  in
  { owner = Some new_owner; readers }

let add_reader t n =
  if is_replica t n then t else { t with readers = t.readers @ [ n ] }

let remove_reader t n = { t with readers = List.filter (fun r -> r <> n) t.readers }

let drop_dead t ~live =
  {
    owner = (match t.owner with Some o when live o -> Some o | _ -> None);
    readers = List.filter live t.readers;
  }

let pp ppf t =
  Format.fprintf ppf "{owner=%s; readers=[%a]}"
    (match t.owner with Some o -> "n" ^ string_of_int o | None -> "-")
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ";")
       Format.pp_print_int)
    t.readers
