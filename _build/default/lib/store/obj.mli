(** A replica's copy of one object, with the per-object metadata of Table 1:
    transactional state ([t_state], [t_version], [t_data]), ownership state
    ([o_state], [o_ts], [o_replicas] — populated at the owner), and the
    local-commit bookkeeping used for multi-threaded local ownership and
    pipelining (§5.2, §7). *)

type t = {
  key : Types.key;
  mutable role : Types.role;
  mutable t_state : Types.t_state;
  mutable t_version : int;
  mutable data : Value.t;
  mutable o_state : Types.o_state;
  mutable o_ts : Ots.t;
  mutable o_replicas : Replicas.t option;  (** owner and directory only *)
  mutable lock_thread : int option;
      (** local thread executing a write transaction on the object *)
  mutable last_writer_thread : int;
      (** pipeline that issued the newest local commit *)
  mutable pending_rc : int;
      (** reliable commits in flight that modified this object *)
}

val create :
  key:Types.key -> role:Types.role -> ?version:int -> ?o_ts:Ots.t -> Value.t -> t

val is_owner : t -> bool

val can_lock : t -> thread:int -> bool
(** Local ownership rule (§7 + §5.2): a thread may acquire the object if no
    other thread holds it {e and} the object is not in another thread's
    still-replicating pipeline. *)

val lock : t -> thread:int -> unit
val unlock : t -> thread:int -> unit

val pp : Format.formatter -> t -> unit
