type key = int
type node_id = Zeus_net.Msg.node_id
type o_state = O_valid | O_invalid | O_request | O_drive
type t_state = T_valid | T_invalid | T_write
type role = Owner | Reader

let pp_o_state ppf = function
  | O_valid -> Format.pp_print_string ppf "Valid"
  | O_invalid -> Format.pp_print_string ppf "Invalid"
  | O_request -> Format.pp_print_string ppf "Request"
  | O_drive -> Format.pp_print_string ppf "Drive"

let pp_t_state ppf = function
  | T_valid -> Format.pp_print_string ppf "Valid"
  | T_invalid -> Format.pp_print_string ppf "Invalid"
  | T_write -> Format.pp_print_string ppf "Write"

let pp_role ppf = function
  | Owner -> Format.pp_print_string ppf "Owner"
  | Reader -> Format.pp_print_string ppf "Reader"
