(** Ownership timestamps [o_ts = (obj_ver, node_id)] (§4).

    Concurrent ownership requests are arbitrated lexicographically on these
    timestamps: each driver proposes [(obj_ver + 1, its own node id)], so
    two drivers can never propose equal timestamps for the same object. *)

type t = { version : int; node : Types.node_id }

val zero : t
val compare : t -> t -> int
val ( > ) : t -> t -> bool
val ( >= ) : t -> t -> bool
val equal : t -> t -> bool

val next : t -> node:Types.node_id -> t
(** [next ts ~node] is [(ts.version + 1, node)]. *)

val pp : Format.formatter -> t -> unit
