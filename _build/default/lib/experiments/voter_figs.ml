(** Figures 10-12: the Voter experiments.

    Figure 10 measures bulk ownership migration: while every node serves a
    steady stream of votes, a block of (idle) voter objects is moved from
    node 0 to node 1 and later from node 1 to node 2 by ten migration
    worker threads per move.

    Figure 11 measures migration of {e hot} objects under load: one
    dedicated thread serves a popular contestant and her voter block; at
    fixed times the load balancer re-pins that traffic to the next node,
    and each first vote there drags the objects over through the ownership
    protocol (exactly the paper's "25k ownership requests per second on a
    single worker thread while the rest of the system runs 5.3 Mtps").

    Figure 12 reports the ownership-latency distribution of both runs. *)

module Engine = Zeus_sim.Engine
module Stats = Zeus_sim.Stats
module Cluster = Zeus_core.Cluster
module Config = Zeus_core.Config
module Node = Zeus_core.Node
module Own = Zeus_ownership
module Value = Zeus_store.Value
module W = Zeus_workload

type run_result = {
  timeline : (float * float) list;  (** (ms, Mtps) *)
  move_stats : (string * float) list;
  latency_mean : float;
  latency_p999 : float;
  cdf : (float * float) list;
}

let merge_latencies cluster nodes =
  let rng = Zeus_sim.Rng.create 3L in
  let merged = Stats.Samples.create rng in
  List.iter
    (fun i ->
      let s = Own.Agent.latency_samples (Node.ownership_agent (Cluster.node cluster i)) in
      Array.iter (fun v -> Stats.Samples.add merged v) (Stats.Samples.values s))
    nodes;
  merged

let background_votes cluster w ~threads ~stop ~ts =
  let nodes = Cluster.nodes cluster in
  let engine = Cluster.engine cluster in
  for home = 0 to nodes - 1 do
    for thread = 0 to threads - 1 do
      let node = Cluster.node cluster home in
      let rec loop () =
        if Engine.now engine < stop && Node.is_alive node then
          W.Spec.run_on_zeus node ~thread
            (W.Voter.gen w ~home ~thread ~threads)
            (fun outcome ->
              if outcome = Zeus_store.Txn.Committed then
                Stats.Timeseries.add ts ~time:(Engine.now engine) 1.0;
              loop ())
      in
      ignore
        (Engine.schedule engine ~after:(0.01 *. float_of_int ((home * threads) + thread)) loop)
    done
  done

(* ---------- Figure 10: bulk migration ------------------------------------ *)

let fig10_run ~quick =
  let block = if quick then 1_000 else 5_000 in
  let voters = if quick then 3_000 else 24_000 in
  let phase_us = if quick then 6_000.0 else 25_000.0 in
  let config = { Config.default with Config.nodes = 3 } in
  let cluster = Cluster.create ~config () in
  let engine = Cluster.engine cluster in
  let rng = Engine.fork_rng engine in
  let w = W.Voter.create ~contestants:20 ~voters ~nodes:3 rng in
  Cluster.populate_n cluster ~n:(W.Voter.total_keys w)
    ~owner_of:(fun k -> W.Voter.home_of_key w k)
    (fun _ -> Bytes.copy W.Voter.initial_value);
  (* The migrated block lives beyond the active keyspace, owned by node 0. *)
  let base = W.Voter.total_keys w in
  Cluster.populate_n cluster ~n:block ~base ~owner_of:(fun _ -> 0)
    (fun _ -> Bytes.copy W.Voter.initial_value);
  let ts = Stats.Timeseries.create ~bucket:(phase_us /. 10.0) in
  let stop = 3.2 *. phase_us in
  (* The paper's vote load is a fixed offered rate well below saturation
     (4 Mtps); four closed-loop threads per node approximate that without
     saturating the datastore workers. *)
  background_votes cluster w ~threads:(min 4 config.Config.app_threads) ~stop ~ts;
  (* Bulk move: ten migration worker threads sweep the block. *)
  let move_done = Hashtbl.create 4 in
  let start_move ~at ~dst_node tag =
    let migration_threads = 10 in
    let per = (block + migration_threads - 1) / migration_threads in
    let remaining = ref migration_threads in
    ignore
      (Engine.schedule engine ~after:at (fun () ->
           let started = Engine.now engine in
           for m = 0 to migration_threads - 1 do
             let lo = base + (m * per) and hi = min (base + block) (base + ((m + 1) * per)) in
             let dst = Cluster.node cluster dst_node in
             let rec migrate key =
               if key >= hi then begin
                 decr remaining;
                 if !remaining = 0 then
                   Hashtbl.replace move_done tag (Engine.now engine -. started)
               end
               else
                 Node.acquire_ownership dst key (fun _ -> migrate (key + 1))
             in
             migrate lo
           done))
  in
  start_move ~at:phase_us ~dst_node:1 "move 0->1";
  start_move ~at:(2.0 *. phase_us) ~dst_node:2 "move 1->2";
  Cluster.run cluster ~until_us:stop;
  let lat = merge_latencies cluster [ 1; 2 ] in
  let moves =
    Hashtbl.fold
      (fun tag dur acc ->
        (tag ^ " duration (ms)", dur /. 1_000.0)
        :: ( tag ^ " objs/s per thread",
             float_of_int block /. 10.0 /. dur *. 1e6 )
        :: acc)
      move_done []
  in
  {
    timeline =
      List.map (fun (t, r) -> (t /. 1_000.0, r)) (Stats.Timeseries.rate ts);
    move_stats = moves;
    latency_mean = Stats.Samples.mean lat;
    latency_p999 = Stats.Samples.percentile lat 99.9;
    cdf = Stats.Samples.cdf lat ~points:12;
  }

(* ---------- Figure 11: hot objects under load ----------------------------- *)

let fig11_run ~quick =
  let hot_block = if quick then 300 else 1_500 in
  let voters = if quick then 3_000 else 24_000 in
  let phase_us = if quick then 8_000.0 else 30_000.0 in
  let config = { Config.default with Config.nodes = 3 } in
  let cluster = Cluster.create ~config () in
  let engine = Cluster.engine cluster in
  let rng = Engine.fork_rng engine in
  let w = W.Voter.create ~contestants:20 ~voters ~nodes:3 rng in
  Cluster.populate_n cluster ~n:(W.Voter.total_keys w)
    ~owner_of:(fun k -> W.Voter.home_of_key w k)
    (fun _ -> Bytes.copy W.Voter.initial_value);
  (* Hot contestant object + her dedicated voters, initially on node 0. *)
  let base = W.Voter.total_keys w in
  let hot_contestant = base in
  Cluster.populate_n cluster ~n:(hot_block + 1) ~base ~owner_of:(fun _ -> 0)
    (fun _ -> Bytes.copy W.Voter.initial_value);
  let ts = Stats.Timeseries.create ~bucket:(phase_us /. 10.0) in
  let stop = 4.2 *. phase_us in
  (* Background: ~5.3 Mtps aggregate in the paper — four closed-loop
     threads per node, below saturation. *)
  background_votes cluster w ~threads:(min 4 (config.Config.app_threads - 1)) ~stop ~ts;
  (* The dedicated hot-contestant thread: sweeps her voters round-robin on
     whichever node the load balancer currently pins her to. *)
  let hot_loc = ref 0 in
  let hot_thread = config.Config.app_threads - 1 in
  let rec hot_vote seq =
    if Engine.now engine < stop then begin
      let node = Cluster.node cluster !hot_loc in
      let voter = base + 1 + (seq mod hot_block) in
      Node.run_write node ~thread:hot_thread ~exec_us:0.5
        ~body:(fun ctx commit ->
          Node.read_write ctx hot_contestant
            (fun v -> Value.padded [ Value.to_int v + 1 ] ~size:32)
            (fun _ ->
              Node.read_write ctx voter
                (fun v -> Value.padded [ Value.to_int v + 1 ] ~size:32)
                (fun _ -> commit ())))
        (fun outcome ->
          if outcome = Zeus_store.Txn.Committed then
            Stats.Timeseries.add ts ~time:(Engine.now engine) 1.0;
          hot_vote (seq + 1))
    end
  in
  ignore (Engine.schedule engine ~after:1.0 (fun () -> hot_vote 0));
  List.iteri
    (fun i dst ->
      ignore
        (Engine.schedule engine
           ~after:(float_of_int (i + 1) *. phase_us)
           (fun () -> hot_loc := dst)))
    [ 1; 2; 0 ];
  Cluster.run cluster ~until_us:stop;
  let lat = merge_latencies cluster [ 0; 1; 2 ] in
  let won =
    List.fold_left
      (fun acc i ->
        acc + Own.Agent.requests_won (Node.ownership_agent (Cluster.node cluster i)))
      0 [ 0; 1; 2 ]
  in
  {
    timeline =
      List.map (fun (t, r) -> (t /. 1_000.0, r)) (Stats.Timeseries.rate ts);
    move_stats =
      [
        ("hot objects per move", float_of_int (hot_block + 1));
        ("total ownership transfers", float_of_int won);
      ];
    latency_mean = Stats.Samples.mean lat;
    latency_p999 = Stats.Samples.percentile lat 99.9;
    cdf = Stats.Samples.cdf lat ~points:12;
  }

(* ---------- printers ------------------------------------------------------- *)

let print_run id title paper (r : run_result) =
  Exp.print_figure
    {
      Exp.id;
      title;
      x_axis = "time (ms)";
      y_axis = "Mtps";
      series = [ { Exp.label = "total committed votes"; points = r.timeline } ];
      paper;
      notes =
        List.map (fun (k, v) -> Printf.sprintf "%s = %.1f" k v) r.move_stats;
    }

let run ~quick =
  let r10 = fig10_run ~quick in
  print_run "fig10" "Voter: moving a block of objects across nodes"
    [
      "full move of 1M objects takes 4s with 10 threads = 25k objs/s per thread";
      "vote throughput steady while moving";
    ]
    r10;
  let r11 = fig11_run ~quick in
  print_run "fig11" "Voter: moving hot objects while registering votes"
    [
      "single worker thread still does 25k ownership requests/s";
      "rest of the system sustains ~5.3 Mtps concurrently";
    ]
    r11;
  Exp.print_figure
    {
      Exp.id = "fig12";
      title = "CDF of Zeus ownership request latency";
      x_axis = "latency (us)";
      y_axis = "cumulative fraction";
      series =
        [
          { Exp.label = "bulk move (fig10 run)"; points = r10.cdf };
          { Exp.label = "hot objects under load (fig11 run)"; points = r11.cdf };
        ];
      paper =
        [
          "bulk move: mean 17us, 99.9p 36us";
          "hot objects under load: mean 29us, 99.9p 83us";
        ];
      notes =
        [
          Printf.sprintf "measured bulk: mean %.1fus, 99.9p %.1fus" r10.latency_mean
            r10.latency_p999;
          Printf.sprintf "measured hot: mean %.1fus, 99.9p %.1fus" r11.latency_mean
            r11.latency_p999;
        ];
    }
