(** TPC-C, executed (an extension: the paper only analyses TPC-C's
    locality, §8, predicting that it favours Zeus).  Zeus runs the full
    five-transaction mix with dynamic ownership; the baseline runs the
    key-set equivalent under static warehouse partitioning. *)

module Engine = Zeus_sim.Engine
module Cluster = Zeus_core.Cluster
module Config = Zeus_core.Config
module Node = Zeus_core.Node
module W = Zeus_workload
module B = Zeus_baseline

let zeus_run ~quick ~nodes =
  let s = Exp.scale_of ~quick in
  let config = { Config.default with Config.nodes } in
  let cluster = Cluster.create ~config () in
  let rng = Engine.fork_rng (Cluster.engine cluster) in
  let w = W.Tpcc_bench.create ~warehouses:(2 * nodes) ~nodes rng in
  W.Tpcc_bench.populate w cluster;
  let r =
    W.Driver.run cluster ~warmup_us:s.Exp.warmup_us ~duration_us:s.Exp.duration_us
      ~issue:(fun node ~thread ~seq:_ done_ ->
        W.Tpcc_bench.issue w node ~thread (fun outcome ->
            done_ (outcome = Zeus_store.Txn.Committed)))
      ()
  in
  let owntxn = ref 0 in
  for i = 0 to nodes - 1 do
    owntxn := !owntxn + Node.txns_with_ownership (Cluster.node cluster i)
  done;
  ( r,
    100.0 *. float_of_int !owntxn /. float_of_int (max 1 r.W.Driver.committed),
    100.0 *. W.Tpcc_bench.remote_line_fraction w )

let baseline_run ~quick ~nodes profile =
  let s = Exp.scale_of ~quick in
  let config = { Config.default with Config.nodes } in
  let rng = Zeus_sim.Rng.create 21L in
  let w = W.Tpcc_bench.create ~warehouses:(2 * nodes) ~nodes rng in
  let eng =
    B.Engine.create ~profile ~config ~primary_of:(fun k -> W.Tpcc_bench.home_of_key w k) ()
  in
  B.Engine.run_load eng ~warmup_us:s.Exp.warmup_us ~duration_us:s.Exp.duration_us
    ~gen:(fun ~home -> W.Tpcc_bench.gen_spec w ~home)
    ()

let run ~quick =
  let zeus, owntxn_pct, remote_lines = zeus_run ~quick ~nodes:3 in
  let fasst = baseline_run ~quick ~nodes:3 B.Profile.fasst in
  Exp.print_kv "tpcc: executed TPC-C (extension; paper only analyses locality)"
    [
      ("Zeus (3 nodes, dynamic sharding)",
       Printf.sprintf "%.3f Mtps (%.1f%% aborts)" zeus.W.Driver.mtps
         (100.0 *. zeus.W.Driver.abort_rate));
      ("FaSST-like (3 nodes, static warehouse sharding)",
       Printf.sprintf "%.3f Mtps" fasst.W.Driver.mtps);
      ("Zeus txns needing ownership change",
       Printf.sprintf "%.2f%%" owntxn_pct);
      ("remote stock lines issued", Printf.sprintf "%.2f%% (spec: 1%%)" remote_lines);
      ( "paper's analysis",
        "~2.45% remote transactions; high locality should favour Zeus" );
      ( "finding",
        "executed TPC-C disagrees with the analysis: the spec's 15% remote "
        ^ "payments plus ~10% remote-line new-orders, doubled by steal-backs, "
        ^ "put ownership churn past Zeus' break-even; static sharding wins "
        ^ "unless payments are routed to the customer's home" );
    ]
