(** Figures 13-15: the legacy-application ports (§8.5). *)

module Gateway = Zeus_apps.Gateway
module Sctp = Zeus_apps.Sctp
module Nginx = Zeus_apps.Nginx

let fig13 ~quick =
  let config =
    if quick then { Gateway.default_config with Gateway.duration_us = 50_000.0 }
    else Gateway.default_config
  in
  let point mode label =
    let r = Gateway.run ~config mode in
    (label, r.Gateway.ktps)
  in
  let rows =
    [
      point `No_store "local memory, no replication";
      point (`Remote_store 120.0) "remote store (Redis-like), blocking";
      point (`Zeus 1) "Zeus, 1 active + 1 passive replica";
      point (`Zeus 2) "Zeus, 2 active (each other's replica)";
    ]
  in
  Exp.print_figure
    {
      Exp.id = "fig13";
      title = "Cellular packet gateway control plane";
      x_axis = "configuration";
      y_axis = "Ktps";
      series =
        List.mapi
          (fun i (label, y) -> { Exp.label; points = [ (float_of_int i, y) ] })
          rows;
      paper =
        [
          "Redis below 10 Ktps (thread blocks on every request)";
          "Zeus single active node matches local-memory (bottleneck is parsing)";
          "two active nodes: +60% (limited by the signal generator)";
        ];
      notes = [ "open-loop generator capped as in the paper's testbed" ];
    }

let fig14 ~quick =
  let config =
    if quick then { Sctp.default_config with Sctp.duration_us = 20_000.0 }
    else Sctp.default_config
  in
  let sizes = if quick then [ 256; 4096; 16384 ] else [ 64; 256; 1024; 4096; 8192; 16384 ] in
  let series mode label =
    {
      Exp.label;
      points =
        List.map
          (fun size ->
            let r = Sctp.run ~config ~mode size in
            (float_of_int size, r.Sctp.mbps))
          sizes;
    }
  in
  let vanilla = series `Vanilla "vanilla SCTP (no replication)" in
  let zeus = series `Zeus "SCTP on Zeus (state replicated)" in
  Exp.print_figure
    {
      Exp.id = "fig14";
      title = "SCTP single-flow throughput vs packet size";
      x_axis = "packet size (B)";
      y_axis = "Mbps";
      series = [ vanilla; zeus ];
      paper =
        [
          "Zeus ~40% slower at large packets (6.8 KB state per packet)";
          "relative gap larger at small packets (replication overhead dominates)";
        ];
      notes =
        (match (List.rev vanilla.Exp.points, List.rev zeus.Exp.points) with
        | (_, v) :: _, (_, z) :: _ ->
          [ Printf.sprintf "measured gap at largest packet: %.0f%%" (100.0 *. (1.0 -. (z /. v))) ]
        | _ -> []);
    }

let fig15 ~quick =
  let config =
    if quick then { Nginx.default_config with Nginx.phase_us = 30_000.0 }
    else Nginx.default_config
  in
  let zeus = Nginx.run ~config ~with_zeus:true () in
  let plain = Nginx.run ~config ~with_zeus:false () in
  Exp.print_figure
    {
      Exp.id = "fig15";
      title = "Nginx session persistence: scale-out / scale-in";
      x_axis = "time (ms)";
      y_axis = "Krps";
      series =
        [
          { Exp.label = "Nginx on Zeus"; points = zeus.Nginx.timeline };
          { Exp.label = "Nginx without datastore"; points = plain.Nginx.timeline };
        ];
      paper =
        [
          "throughput with Zeus equals the no-datastore variant";
          "seamless scale-out at 1/3 and scale-in at 2/3 of the run";
        ];
      notes =
        [
          Printf.sprintf "overall: %.1f Krps with Zeus vs %.1f Krps without"
            zeus.Nginx.total_krps plain.Nginx.total_krps;
        ];
    }

let run ~quick =
  fig13 ~quick;
  fig14 ~quick;
  fig15 ~quick
