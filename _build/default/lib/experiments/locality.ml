(** §8 "Locality in workloads": remote-transaction fractions of the Boston
    handover model, the Venmo-like payment graph, and the TPC-C analytical
    model. *)

module Rng = Zeus_sim.Rng
module W = Zeus_workload

let run ~quick =
  let rng = Rng.create 2024L in
  let trips = if quick then 2_000 else 20_000 in
  let boston =
    List.map
      (fun nodes ->
        (nodes, W.Mobility.remote_handover_fraction ~trips ~nodes rng))
      [ 2; 3; 4; 5; 6 ]
  in
  let venmo =
    List.map
      (fun nodes ->
        let v = W.Venmo.create ~nodes rng in
        (nodes, W.Venmo.remote_fraction ~samples:(if quick then 20_000 else 200_000) v))
      [ 3; 6 ]
  in
  let tpcc_txn = W.Tpcc.remote_txn_fraction () in
  let tpcc_access = W.Tpcc.remote_access_fraction () in
  Exp.print_kv "locality: remote fractions of workloads (§8)"
    (List.map
       (fun (n, f) ->
         (Printf.sprintf "Boston handovers, %d nodes (remote/all handovers)" n,
          Printf.sprintf "%.1f%%" (100.0 *. f)))
       boston
    @ [ ("  paper", "up to 6.2%% remote handovers at 6 nodes") ]
    @ List.map
        (fun (n, f) ->
          (Printf.sprintf "Venmo-like payments, %d nodes (remote txns)" n,
           Printf.sprintf "%.2f%%" (100.0 *. f)))
        venmo
    @ [
        ("  paper", "0.7% at 3 nodes, 1.2% at 6 nodes");
        ( "TPC-C remote transactions (spec-standard model)",
          Printf.sprintf "%.2f%%" (100.0 *. tpcc_txn) );
        ( "TPC-C remote accesses (per-object metric)",
          Printf.sprintf "%.2f%%" (100.0 *. tpcc_access) );
        ("  paper", "2.45% (metric/assumptions unstated; see EXPERIMENTS.md)");
      ])
