(** Ablations of the design choices DESIGN.md calls out — beyond the
    paper's own figures. *)

module Engine = Zeus_sim.Engine
module Cluster = Zeus_core.Cluster
module Config = Zeus_core.Config
module Node = Zeus_core.Node
module W = Zeus_workload

let smallbank_run ~quick ~config ~remote_frac =
  let s = Exp.scale_of ~quick in
  let cluster = Cluster.create ~config () in
  let rng = Engine.fork_rng (Cluster.engine cluster) in
  let w =
    W.Smallbank.create ~accounts_per_node:s.Exp.objects_per_node
      ~nodes:config.Config.nodes ~remote_frac rng
  in
  Cluster.populate_n cluster ~n:(W.Smallbank.total_keys w)
    ~owner_of:(fun k -> W.Smallbank.home_of_key w k)
    (fun _ -> Bytes.copy W.Smallbank.initial_value);
  W.Driver.run cluster ~warmup_us:s.Exp.warmup_us ~duration_us:s.Exp.duration_us
    ~issue:(fun node ~thread ~seq:_ done_ ->
      W.Spec.run_on_zeus node ~thread
        (W.Smallbank.gen w ~home:(Node.id node))
        (fun outcome -> done_ (outcome = Zeus_store.Txn.Committed)))
    ()

(* §5.2: what does non-blocking pipelining buy?  Depth 1 makes every
   transaction wait for the previous one's replication before starting its
   own reliable commit — the conventional blocking design. *)
let pipeline ~quick =
  let points =
    List.map
      (fun depth ->
        let config = { Config.default with Config.pipeline_depth = depth } in
        let r = smallbank_run ~quick ~config ~remote_frac:0.0 in
        (float_of_int depth, r.W.Driver.mtps))
      [ 1; 2; 4; 8; 16; 32 ]
  in
  Exp.print_figure
    {
      Exp.id = "ab_pipeline";
      title = "Ablation: reliable-commit pipeline depth (Smallbank, 3 nodes)";
      x_axis = "max in-flight reliable commits per thread";
      y_axis = "Mtps";
      series = [ { Exp.label = "Zeus"; points } ];
      paper =
        [ "no paper counterpart; §5.2 argues pipelining is what unblocks the app" ];
      notes = [];
    }

(* §3.1: replication degree vs throughput. *)
let replication ~quick =
  let points =
    List.map
      (fun degree ->
        let config =
          { Config.default with Config.nodes = 5; replication_degree = degree }
        in
        let r = smallbank_run ~quick ~config ~remote_frac:0.0 in
        (float_of_int degree, r.W.Driver.mtps))
      [ 1; 2; 3; 4; 5 ]
  in
  Exp.print_figure
    {
      Exp.id = "ab_replication";
      title = "Ablation: replication degree (Smallbank, 5 nodes)";
      x_axis = "replicas per object (owner included)";
      y_axis = "Mtps";
      series = [ { Exp.label = "Zeus"; points } ];
      paper =
        [
          "§3.1: \"the higher the degree of replication ... the lower the \
           throughput of transactions that modify the state\"";
        ];
      notes = [];
    }

(* §5.3: local read-only transactions from all replicas vs owner-only
   reads, on a read-heavy keyspace owned by one node. *)
let readonly ~quick =
  let s = Exp.scale_of ~quick in
  let run ~ro_everywhere =
    let config = { Config.default with Config.nodes = 3 } in
    let cluster = Cluster.create ~config () in
    let rng = Engine.fork_rng (Cluster.engine cluster) in
    let keys = s.Exp.objects_per_node in
    Cluster.populate_n cluster ~n:keys ~owner_of:(fun _ -> 0)
      (fun _ -> Bytes.copy (Zeus_store.Value.padded [ 1 ] ~size:64));
    let nodes = if ro_everywhere then None else Some [ 0 ] in
    let r =
      W.Driver.run cluster ?nodes ~warmup_us:s.Exp.warmup_us
        ~duration_us:s.Exp.duration_us
        ~issue:(fun node ~thread ~seq:_ done_ ->
          let key = Zeus_sim.Rng.int rng keys in
          W.Spec.run_on_zeus node ~thread
            (W.Spec.read_txn [ key ])
            (fun outcome -> done_ (outcome = Zeus_store.Txn.Committed)))
        ()
    in
    r.W.Driver.mtps
  in
  Exp.print_kv "ab_readonly: consistent local reads from all replicas (§5.3)"
    [
      ("read-only txns served by owner only", Printf.sprintf "%.2f Mtps" (run ~ro_everywhere:false));
      ("read-only txns served by all 3 replicas", Printf.sprintf "%.2f Mtps" (run ~ro_everywhere:true));
    ]

(* §6.2: cost of ownership vs object size — a non-replica acquire carries
   the value, a reader's acquire does not. *)
let locality ~quick =
  let s = Exp.scale_of ~quick in
  let run ~size ~reader_requester =
    let config =
      if reader_requester then { Config.default with Config.nodes = 3 }
      else { Config.default with Config.nodes = 4; replication_degree = 3 }
    in
    let cluster = Cluster.create ~config () in
    let keys = 2_000 in
    (* Owned by node 0; node 2 is a reader in both configs, node 3 (when
       present) is a non-replica. *)
    Cluster.populate_n cluster ~n:keys ~owner_of:(fun _ -> 0)
      (fun _ -> Bytes.copy (Zeus_store.Value.padded [ 1 ] ~size));
    let requester = if reader_requester then 2 else 3 in
    let node = Cluster.node cluster requester in
    let engine = Cluster.engine cluster in
    let moved = ref 0 in
    let rec migrate key =
      if key < keys && Engine.now engine < s.Exp.duration_us then
        Node.acquire_ownership node key (fun _ ->
            incr moved;
            migrate (key + 1))
    in
    ignore (Engine.schedule engine ~after:1.0 (fun () -> migrate 0));
    Cluster.run cluster ~until_us:s.Exp.duration_us;
    let lat = Node.ownership_latency node in
    Zeus_sim.Stats.Samples.mean lat
  in
  let sizes = if quick then [ 64; 4096 ] else [ 64; 512; 4096; 16384 ] in
  Exp.print_figure
    {
      Exp.id = "ab_locality";
      title = "Ablation: ownership-acquire latency vs object size (§6.2)";
      x_axis = "object size (B)";
      y_axis = "mean latency (us)";
      series =
        [
          {
            Exp.label = "requester is a reader (no data transfer)";
            points =
              List.map
                (fun size -> (float_of_int size, run ~size ~reader_requester:true))
                sizes;
          };
          {
            Exp.label = "requester is a non-replica (value shipped in the ACK)";
            points =
              List.map
                (fun size -> (float_of_int size, run ~size ~reader_requester:false))
                sizes;
          };
        ];
      paper =
        [
          "§6.2: object size influences a non-replica's acquire like a remote \
           access; a reader acquires without the value";
        ];
      notes = [];
    }

(* §6.2: single replicated directory vs consistent-hash distributed
   directory, under limited locality at 6 nodes. *)
let directory ~quick =
  let run distributed =
    let config =
      {
        Config.default with
        Config.nodes = 6;
        distributed_directory = distributed;
      }
    in
    let r = smallbank_run ~quick ~config ~remote_frac:0.05 in
    (r.W.Driver.mtps, ())
  in
  let single, () = run false in
  let dist, () = run true in
  Exp.print_kv "ab_directory: single vs distributed directory (§6.2)"
    [
      ("single replicated directory (3 fixed nodes)", Printf.sprintf "%.2f Mtps" single);
      ("distributed directory (consistent hashing)", Printf.sprintf "%.2f Mtps" dist);
      ( "note",
        "at this scale both keep up; the distributed directory spreads "
        ^ "driver load across all nodes (see test/test_distdir.ml)" );
    ]

let run ~quick =
  pipeline ~quick;
  replication ~quick;
  readonly ~quick;
  locality ~quick;
  directory ~quick
