(** The "formal verification" row of the evaluation (§8): exhaustive
    exploration of the protocol models (the TLA+ stand-in, `lib/model`). *)

module E = Zeus_model.Explorer
module O = Zeus_model.Ownership_spec
module C = Zeus_model.Commit_spec

let describe name (stats : _ E.stats) =
  ( name,
    match stats.E.violation with
    | Some (_, msg) -> Printf.sprintf "VIOLATION: %s" msg
    | None ->
      Printf.sprintf "ok — %d states, %d transitions, depth %d, %d quiescent"
        stats.E.explored stats.E.transitions stats.E.max_depth stats.E.quiescent )

let run ~quick =
  let cap = if quick then 60_000 else 600_000 in
  let rows =
    [
      describe "ownership: contention, no faults"
        (O.explore ~config:{ O.default_config with O.crashable = []; dup_budget = 0 }
           ~max_states:cap ());
      describe "ownership: contention + duplication"
        (O.explore ~config:{ O.default_config with O.crashable = []; dup_budget = 1 }
           ~max_states:cap ());
      describe "ownership: crash of owner/driver, single requester"
        (O.explore ~config:{ O.default_config with O.requesters = [ 3 ] } ~max_states:cap ());
      describe "ownership: contention + crash"
        (O.explore ~max_states:cap ());
      describe "commit: pipelined, partial streams"
        (C.explore ~config:{ C.default_config with C.crash = false } ~max_states:cap ());
      describe "commit: duplication"
        (C.explore
           ~config:{ C.default_config with C.crash = false; dup_budget = 1 }
           ~max_states:cap ());
      describe "commit: coordinator crash + replay" (C.explore ~max_states:cap ());
    ]
  in
  Exp.print_kv
    "verify: exhaustive model checking of both protocols (TLA+ stand-in, §8)" rows
