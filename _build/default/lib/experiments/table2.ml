(** Table 2: summary of the evaluated benchmarks. *)

let run ~quick:_ =
  let rows =
    [
      Zeus_workload.Handover.table_summary;
      Zeus_workload.Smallbank.table_summary;
      Zeus_workload.Tatp.table_summary;
      Zeus_workload.Voter.table_summary;
    ]
  in
  Printf.printf "\n== table2: Summary of evaluated benchmarks ==\n";
  Printf.printf "  %-10s %7s %8s %4s %9s\n" "benchmark" "tables" "columns" "txs" "read txs";
  List.iter
    (fun (name, tables, columns, txs, read_pct) ->
      Printf.printf "  %-10s %7d %8d %4d %8d%%\n" name tables columns txs read_pct)
    rows;
  Printf.printf
    "  paper: Handovers 5/36/4/0%%, Smallbank 3/6/6/15%%, TATP 4/51/7/80%%, Voter 3/9/1/0%%\n%!"
