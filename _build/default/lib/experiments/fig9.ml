(** Figure 9: TATP throughput while varying remote write transactions, vs
    FaSST- and FaRM-like baselines. *)

module Engine = Zeus_sim.Engine
module Cluster = Zeus_core.Cluster
module Config = Zeus_core.Config
module Node = Zeus_core.Node
module W = Zeus_workload
module B = Zeus_baseline

let zeus_point ~quick ~nodes ~remote_frac =
  let s = Exp.scale_of ~quick in
  let config = { Config.default with Config.nodes } in
  let cluster = Cluster.create ~config () in
  let rng = Engine.fork_rng (Cluster.engine cluster) in
  let w =
    W.Tatp.create ~subscribers_per_node:s.Exp.objects_per_node ~nodes ~remote_frac rng
  in
  Cluster.populate_n cluster ~n:(W.Tatp.total_keys w)
    ~owner_of:(fun k -> W.Tatp.home_of_key w k)
    (fun _ -> Bytes.copy W.Tatp.initial_value);
  let r =
    W.Driver.run cluster ~warmup_us:s.Exp.warmup_us ~duration_us:s.Exp.duration_us
      ~issue:(fun node ~thread ~seq:_ done_ ->
        W.Spec.run_on_zeus node ~thread
          (W.Tatp.gen w ~home:(Node.id node))
          (fun outcome -> done_ (outcome = Zeus_store.Txn.Committed)))
      ()
  in
  let owntxn = ref 0 in
  for i = 0 to nodes - 1 do
    owntxn := !owntxn + Node.txns_with_ownership (Cluster.node cluster i)
  done;
  (* 20 % of the TATP mix are writes. *)
  let writes = 0.2 *. float_of_int r.W.Driver.committed in
  (100.0 *. float_of_int !owntxn /. Float.max 1.0 writes, r.W.Driver.mtps, r)

let baseline_point ~quick ~nodes profile =
  let s = Exp.scale_of ~quick in
  let config = { Config.default with Config.nodes } in
  let rng = Zeus_sim.Rng.create 11L in
  let w =
    W.Tatp.create ~subscribers_per_node:s.Exp.objects_per_node ~nodes
      ~remote_frac:(1.0 -. (1.0 /. float_of_int nodes))
      ~local_reads:false rng
  in
  let eng =
    B.Engine.create ~profile ~config ~primary_of:(fun k -> W.Tatp.home_of_key w k) ()
  in
  let r =
    B.Engine.run_load eng ~warmup_us:s.Exp.warmup_us ~duration_us:s.Exp.duration_us
      ~gen:(fun ~home -> W.Tatp.gen w ~home)
      ()
  in
  r.W.Driver.mtps

let run ~quick =
  let fracs =
    if quick then [ 0.0; 0.1; 0.3 ] else [ 0.0; 0.05; 0.1; 0.2; 0.3; 0.5; 0.7 ]
  in
  let latency_notes = ref [] in
  let zeus nodes =
    {
      Exp.label = Printf.sprintf "Zeus (%d nodes)" nodes;
      points =
        List.map
          (fun f ->
            let x, y, r = zeus_point ~quick ~nodes ~remote_frac:f in
            if f = 0.0 then
              latency_notes :=
                Printf.sprintf
                  "Zeus txn latency at 0%% remote (%d nodes): p50 %.1fus, p99 %.1fus"
                  nodes r.W.Driver.lat_p50_us r.W.Driver.lat_p99_us
                :: !latency_notes;
            (x, y))
          fracs;
    }
  in
  let flat nodes profile =
    let y = baseline_point ~quick ~nodes profile in
    {
      Exp.label = Printf.sprintf "%s (%d nodes, static sharding)" profile.B.Profile.name nodes;
      points = [ (0.0, y); (60.0, y) ];
    }
  in
  let series =
    [
      zeus 3;
      zeus 6;
      flat 3 B.Profile.fasst;
      flat 6 B.Profile.fasst;
      flat 3 B.Profile.farm;
      flat 6 B.Profile.farm;
    ]
  in
  Exp.print_figure
    {
      Exp.id = "fig9";
      title = "TATP while varying remote write transactions";
      x_axis = "% write txns needing ownership change";
      y_axis = "Mtps";
      series;
      paper =
        [
          "Zeus up to 2x FaSST and 3.5x FaRM at low remote fractions";
          "break-even vs FaSST below ~20%, vs FaRM below ~40% of write txns";
        ];
      notes = Exp.scale_note ~quick :: List.rev !latency_notes;
    }
