lib/experiments/exp.ml: List Printf String
