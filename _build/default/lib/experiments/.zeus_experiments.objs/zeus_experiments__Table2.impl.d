lib/experiments/table2.ml: List Printf Zeus_workload
