lib/experiments/verify.ml: Exp Printf Zeus_model
