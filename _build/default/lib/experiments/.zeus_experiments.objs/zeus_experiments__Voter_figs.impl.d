lib/experiments/voter_figs.ml: Array Bytes Exp Hashtbl List Printf Zeus_core Zeus_ownership Zeus_sim Zeus_store Zeus_workload
