lib/experiments/apps_figs.ml: Exp List Printf Zeus_apps
