lib/experiments/tpcc_fig.ml: Exp Printf Zeus_baseline Zeus_core Zeus_sim Zeus_store Zeus_workload
