lib/experiments/fig7.ml: Array Bytes Exp List Printf Zeus_core Zeus_sim Zeus_store Zeus_workload
