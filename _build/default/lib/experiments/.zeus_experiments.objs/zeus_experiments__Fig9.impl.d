lib/experiments/fig9.ml: Bytes Exp Float List Printf Zeus_baseline Zeus_core Zeus_sim Zeus_store Zeus_workload
