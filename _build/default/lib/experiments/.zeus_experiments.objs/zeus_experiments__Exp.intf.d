lib/experiments/exp.mli:
