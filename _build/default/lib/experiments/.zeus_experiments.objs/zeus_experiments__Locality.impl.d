lib/experiments/locality.ml: Exp List Printf Zeus_sim Zeus_workload
