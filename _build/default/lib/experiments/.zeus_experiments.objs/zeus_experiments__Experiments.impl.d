lib/experiments/experiments.ml: Ablations Apps_figs Fig7 Fig8 Fig9 List Locality Printf Table2 Tpcc_fig Verify Voter_figs
