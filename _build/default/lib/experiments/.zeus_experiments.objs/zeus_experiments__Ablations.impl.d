lib/experiments/ablations.ml: Bytes Exp List Printf Zeus_core Zeus_sim Zeus_store Zeus_workload
