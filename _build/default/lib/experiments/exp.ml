type series = { label : string; points : (float * float) list }

type figure = {
  id : string;
  title : string;
  x_axis : string;
  y_axis : string;
  series : series list;
  paper : string list;
  notes : string list;
}

let hrule width = String.make width '-'

let print_figure f =
  Printf.printf "\n== %s: %s ==\n" f.id f.title;
  List.iter
    (fun s ->
      Printf.printf "  %s  [%s -> %s]\n" s.label f.x_axis f.y_axis;
      List.iter (fun (x, y) -> Printf.printf "    %10.3f  %10.3f\n" x y) s.points)
    f.series;
  if f.paper <> [] then begin
    Printf.printf "  paper reports:\n";
    List.iter (fun p -> Printf.printf "    - %s\n" p) f.paper
  end;
  List.iter (fun n -> Printf.printf "  note: %s\n" n) f.notes;
  Printf.printf "  %s\n%!" (hrule 60)

let print_kv title kvs =
  Printf.printf "\n== %s ==\n" title;
  List.iter (fun (k, v) -> Printf.printf "  %-42s %s\n" k v) kvs;
  Printf.printf "%!"

let scale_note ~quick =
  if quick then "quick mode: tiny population, short runs (smoke only)"
  else
    "scaled deployment: populations ~1/50 of the paper's, virtual-time runs \
     of tens of ms instead of seconds; shapes and ratios are comparable, \
     absolute counts are not"

type scale = { duration_us : float; warmup_us : float; objects_per_node : int }

let scale_of ~quick =
  if quick then { duration_us = 3_000.0; warmup_us = 500.0; objects_per_node = 2_000 }
  else { duration_us = 15_000.0; warmup_us = 2_000.0; objects_per_node = 10_000 }
