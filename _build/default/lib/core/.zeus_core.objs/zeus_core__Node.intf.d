lib/core/node.mli: Config History Table Txn Types Value Zeus_commit Zeus_membership Zeus_net Zeus_ownership Zeus_sim Zeus_store
