lib/core/node.ml: Array Config Float History List Obj Option Queue Replicas Result Table Txn Types Value Zeus_commit Zeus_membership Zeus_net Zeus_ownership Zeus_sim Zeus_store
