lib/core/config.ml: List Zeus_net Zeus_ownership Zeus_store
