lib/core/cluster.ml: Array Bytes Config Format Hashtbl History List Node Obj Replicas String Table Types Value Zeus_membership Zeus_net Zeus_ownership Zeus_sim Zeus_store
