lib/core/cluster.mli: Config History Node Types Value Zeus_membership Zeus_net Zeus_sim Zeus_store
