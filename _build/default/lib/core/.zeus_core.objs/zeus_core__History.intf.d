lib/core/history.mli: Types Zeus_store
