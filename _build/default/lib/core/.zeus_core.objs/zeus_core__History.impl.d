lib/core/history.ml: Float Format Hashtbl List Option Printf String Types Zeus_store
