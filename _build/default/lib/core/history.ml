open Zeus_store

type version_info = { local_t : float; mutable durable_t : float }

type write_txn = {
  w_node : Types.node_id;
  w_reads : (Types.key * int) list;
  w_writes : (Types.key * int) list;
}

type ro_txn = { r_node : Types.node_id; r_reads : (Types.key * int) list; r_time : float }

type t = {
  versions : (Types.key * int, version_info) Hashtbl.t;
  max_version : (Types.key, int) Hashtbl.t;
  mutable write_txns : write_txn list;
  mutable ro_txns : ro_txn list;
  mutable n_writes : int;
}

let create () =
  {
    versions = Hashtbl.create 4096;
    max_version = Hashtbl.create 1024;
    write_txns = [];
    ro_txns = [];
    n_writes = 0;
  }

let record_commit t ~node ~reads ~writes ~time =
  List.iter
    (fun (key, version) ->
      Hashtbl.replace t.versions (key, version) { local_t = time; durable_t = infinity };
      let cur = Option.value ~default:0 (Hashtbl.find_opt t.max_version key) in
      if version > cur then Hashtbl.replace t.max_version key version)
    writes;
  t.write_txns <- { w_node = node; w_reads = reads; w_writes = writes } :: t.write_txns;
  t.n_writes <- t.n_writes + 1

let record_durable t ~writes ~time =
  List.iter
    (fun (key, version) ->
      match Hashtbl.find_opt t.versions (key, version) with
      | Some info -> if time < info.durable_t then info.durable_t <- time
      | None -> ())
    writes

let record_ro t ~node ~reads ~time =
  t.ro_txns <- { r_node = node; r_reads = reads; r_time = time } :: t.ro_txns

let writes t = t.n_writes
let read_only_txns t = List.length t.ro_txns

let err fmt = Format.kasprintf (fun s -> Error s) fmt

let check_version_sequences t =
  (* Initially populated versions predate recording; require contiguity from
     the smallest version the history has seen for each key. *)
  let minv key maxv =
    let rec go v = if v >= maxv || Hashtbl.mem t.versions (key, v) then v else go (v + 1) in
    go 1
  in
  Hashtbl.fold
    (fun key maxv acc ->
      match acc with
      | Error _ -> acc
      | Ok () ->
        let rec go v =
          if v > maxv then Ok ()
          else if Hashtbl.mem t.versions (key, v) then go (v + 1)
          else err "key %d: version %d missing (max %d) — lost update" key v maxv
        in
        go (minv key maxv))
    t.max_version (Ok ())

let check_write_reads t =
  List.fold_left
    (fun acc txn ->
      match acc with
      | Error _ -> acc
      | Ok () ->
        List.fold_left
          (fun acc (key, read_v) ->
            match acc with
            | Error _ -> acc
            | Ok () -> (
              match List.assoc_opt key txn.w_writes with
              | Some written_v when written_v <> read_v + 1 ->
                err "node %d: read key %d@%d but wrote version %d (expected %d)"
                  txn.w_node key read_v written_v (read_v + 1)
              | Some _ | None -> Ok ()))
          (Ok ()) txn.w_reads)
    (Ok ()) t.write_txns

(* Validity window of (key, v): starts at its local commit, ends when v+1 is
   reliably committed (or never, if v is the latest). *)
let window t key v =
  let start =
    match Hashtbl.find_opt t.versions (key, v) with
    | Some info -> info.local_t
    | None -> 0.0 (* initially populated versions predate recording *)
  in
  let stop =
    match Hashtbl.find_opt t.versions (key, v + 1) with
    | Some next -> next.durable_t
    | None -> infinity
  in
  (start, stop)

let check_ro_snapshots t =
  List.fold_left
    (fun acc ro ->
      match acc with
      | Error _ -> acc
      | Ok () ->
        let lo, hi =
          List.fold_left
            (fun (lo, hi) (key, v) ->
              let start, stop = window t key v in
              (Float.max lo start, Float.min hi stop))
            (0.0, infinity) ro.r_reads
        in
        if Float.is_nan lo || lo > hi then
          err "node %d: read-only snapshot at t=%.1f is inconsistent: %s" ro.r_node
            ro.r_time
            (String.concat ", "
               (List.map (fun (k, v) -> Printf.sprintf "%d@%d" k v) ro.r_reads))
        else Ok ())
    (Ok ()) t.ro_txns

let check t =
  match check_version_sequences t with
  | Error _ as e -> e
  | Ok () -> (
    match check_write_reads t with
    | Error _ as e -> e
    | Ok () -> check_ro_snapshots t)
