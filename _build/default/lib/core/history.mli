(** Committed-history recorder and consistency checker.

    Used by the test suite as an executable counterpart of the paper's
    TLA+ invariants (§8): it records every committed transaction cluster-wide
    and checks that the history is consistent with strict serializability.

    The model: version [v] of key [k] becomes visible at its coordinator's
    local commit and stops being returnable anywhere once version [v + 1]
    is {e reliably} committed (a reader returns [v + 1] only after R-VAL,
    which the coordinator sends only after every reader of [v + 1]
    invalidated — so no reader can still serve [v], §5.3).  Hence a
    read-only transaction's snapshot [(k₁, v₁) … (kₙ, vₙ)] is consistent
    iff the validity windows [local_commit(vᵢ), reliable_commit(vᵢ + 1))
    have a common point. *)

open Zeus_store

type t

val create : unit -> t

val record_commit :
  t ->
  node:Types.node_id ->
  reads:(Types.key * int) list ->
  writes:(Types.key * int) list ->
  time:float ->
  unit
(** A write transaction's local commit: [writes] carry the new versions,
    [reads] the versions observed. *)

val record_durable : t -> writes:(Types.key * int) list -> time:float -> unit
(** The same transaction's reliable commit. *)

val record_ro : t -> node:Types.node_id -> reads:(Types.key * int) list -> time:float -> unit
(** A committed read-only transaction (on any replica). *)

val writes : t -> int
val read_only_txns : t -> int

val check : t -> (unit, string) result
(** All checks:
    - per key, committed write versions are gapless and unique;
    - a write transaction that read [(k, v)] and wrote [k] produced [v + 1]
      (no lost updates);
    - every read-only snapshot has a non-empty validity-window
      intersection. *)
