(** Hermes-style replicated key-value store (§3.1).

    Zeus' application-level load balancer keeps its key→destination map in
    a small replicated KV based on Hermes [Katsarakis et al., ASPLOS '20]:
    broadcast-based invalidations give linearizable single-key writes from
    {e any} replica in one round trip, and reads are always local.

    Protocol per write: the coordinating replica stamps the key with a
    logical timestamp [(version + 1, node)], INVs all other replicas
    (which buffer the new value and stop serving the key), collects ACKs,
    then VALs.  Lexicographically larger timestamps win concurrent writes;
    INVs are idempotent, so a replica that misses a VAL re-ACKs on the
    retransmitted INV. *)

open Zeus_store

type t

val create : node:Types.node_id -> replicas:Types.node_id list -> Zeus_net.Transport.t -> t
(** One replica agent.  [replicas] lists every replica (including [node]).
    The agent does not install transport handlers; route payloads to
    {!handle}. *)

val node : t -> Types.node_id

val write : t -> key:Types.key -> Value.t -> (unit -> unit) -> unit
(** Linearizable write coordinated by this replica; the continuation fires
    when the write is committed (all replicas invalidated). *)

val read : t -> Types.key -> Value.t option
(** Local read; [None] while the key is invalid (a write is in flight) or
    absent. *)

val read_wait : t -> Types.key -> (Value.t option -> unit) -> unit
(** Local read that retries briefly while the key is invalid. *)

val handle : t -> src:Types.node_id -> Zeus_net.Msg.payload -> bool

val keys : t -> int
val writes_committed : t -> int
