module Rng = Zeus_sim.Rng
module Value = Zeus_store.Value

type t = {
  hermes : Hermes.t;
  rng : Rng.t;
  mutable backends : Zeus_net.Msg.node_id list;
  mutable hits : int;
  mutable misses : int;
}

let create ~node ~lb_nodes ~backends transport =
  {
    hermes = Hermes.create ~node ~replicas:lb_nodes transport;
    rng =
      Zeus_sim.Engine.fork_rng
        (Zeus_net.Fabric.engine (Zeus_net.Transport.fabric transport));
    backends;
    hits = 0;
    misses = 0;
  }

let hermes t = t.hermes
let hits t = t.hits
let misses t = t.misses
let set_backends t backends = t.backends <- backends

let route t ~key k =
  Hermes.read_wait t.hermes key (fun v ->
      match v with
      | Some dst ->
        t.hits <- t.hits + 1;
        k (Value.to_int dst)
      | None ->
        t.misses <- t.misses + 1;
        let dst = List.nth t.backends (Rng.int t.rng (List.length t.backends)) in
        Hermes.write t.hermes ~key (Value.of_int dst) (fun () -> k dst))

let reassign t ~key dst k = Hermes.write t.hermes ~key (Value.of_int dst) k
let handle t ~src payload = Hermes.handle t.hermes ~src payload
