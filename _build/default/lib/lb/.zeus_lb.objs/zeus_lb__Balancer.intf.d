lib/lb/balancer.mli: Hermes Zeus_net
