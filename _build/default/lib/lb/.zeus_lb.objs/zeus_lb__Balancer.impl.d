lib/lb/balancer.ml: Hermes List Zeus_net Zeus_sim Zeus_store
