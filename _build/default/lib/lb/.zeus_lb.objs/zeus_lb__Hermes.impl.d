lib/lb/hermes.ml: Hashtbl List Ots Types Value Zeus_net Zeus_sim Zeus_store
