lib/lb/hermes.mli: Types Value Zeus_net Zeus_store
