module Engine = Zeus_sim.Engine
module Transport = Zeus_net.Transport
open Zeus_store

type state = Valid | Invalid

type entry = {
  mutable state : state;
  mutable ts : Ots.t;
  mutable value : Value.t;
}

type Zeus_net.Msg.payload +=
  | H_inv of { key : Types.key; ts : Ots.t; value : Value.t; writer : Types.node_id }
  | H_ack of { key : Types.key; ts : Ots.t; sender : Types.node_id }
  | H_val of { key : Types.key; ts : Ots.t }

type pending_write = {
  w_ts : Ots.t;
  mutable w_missing : Types.node_id list;
  w_k : unit -> unit;
}

type t = {
  node : Types.node_id;
  replicas : Types.node_id list;
  transport : Transport.t;
  engine : Engine.t;
  entries : (Types.key, entry) Hashtbl.t;
  pending : (Types.key, pending_write) Hashtbl.t;
  mutable writes_committed : int;
}

let create ~node ~replicas transport =
  {
    node;
    replicas;
    transport;
    engine = Zeus_net.Fabric.engine (Transport.fabric transport);
    entries = Hashtbl.create 1024;
    pending = Hashtbl.create 32;
    writes_committed = 0;
  }

let node t = t.node
let keys t = Hashtbl.length t.entries
let writes_committed t = t.writes_committed

let entry t key =
  match Hashtbl.find_opt t.entries key with
  | Some e -> e
  | None ->
    let e = { state = Valid; ts = Ots.zero; value = Value.empty } in
    Hashtbl.replace t.entries key e;
    e

let send t ~dst ?size payload = Transport.send t.transport ~src:t.node ~dst ?size payload
let others t = List.filter (fun r -> r <> t.node) t.replicas

let read t key =
  match Hashtbl.find_opt t.entries key with
  | Some e when e.state = Valid && not (Ots.equal e.ts Ots.zero) -> Some e.value
  | Some _ | None -> None

let read_wait t key k =
  let rec attempt tries =
    match Hashtbl.find_opt t.entries key with
    | Some e when e.state = Invalid && tries > 0 ->
      ignore (Engine.schedule t.engine ~after:5.0 (fun () -> attempt (tries - 1)))
    | _ -> k (read t key)
  in
  attempt 20

let commit_write t key (p : pending_write) =
  let e = entry t key in
  if Ots.equal e.ts p.w_ts then e.state <- Valid;
  Hashtbl.remove t.pending key;
  t.writes_committed <- t.writes_committed + 1;
  List.iter (fun r -> send t ~dst:r ~size:48 (H_val { key; ts = p.w_ts })) (others t);
  p.w_k ()

let write t ~key value k =
  let e = entry t key in
  let ts = Ots.next e.ts ~node:t.node in
  e.ts <- ts;
  e.value <- value;
  e.state <- Invalid;
  let p = { w_ts = ts; w_missing = others t; w_k = k } in
  Hashtbl.replace t.pending key p;
  if p.w_missing = [] then commit_write t key p
  else
    List.iter
      (fun r ->
        send t ~dst:r
          ~size:(64 + Value.size value)
          (H_inv { key; ts; value; writer = t.node }))
      (others t)

let handle t ~src payload =
  match payload with
  | H_inv { key; ts; value; writer } ->
    let e = entry t key in
    if Ots.(ts > e.ts) then begin
      e.ts <- ts;
      e.value <- value;
      e.state <- Invalid;
      (* A concurrent local write with a smaller timestamp lost; its
         pending record will be superseded when our INV reaches the peer
         (which re-ACKs with the higher ts). *)
      match Hashtbl.find_opt t.pending key with
      | Some p when Ots.(ts > p.w_ts) ->
        Hashtbl.remove t.pending key;
        p.w_k ()
      | Some _ | None -> ()
    end;
    if Ots.(e.ts >= ts) then
      send t ~dst:writer ~size:48 (H_ack { key; ts; sender = t.node });
    ignore src;
    true
  | H_ack { key; ts; sender } ->
    (match Hashtbl.find_opt t.pending key with
    | Some p when Ots.equal p.w_ts ts ->
      p.w_missing <- List.filter (fun r -> r <> sender) p.w_missing;
      if p.w_missing = [] then commit_write t key p
    | Some _ | None -> ());
    true
  | H_val { key; ts } ->
    let e = entry t key in
    if Ots.equal e.ts ts then e.state <- Valid;
    true
  | _ -> false
