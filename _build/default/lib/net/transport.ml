module Engine = Zeus_sim.Engine

type config = { rto_us : float; max_retries : int; dedup : bool }

let default_config = { rto_us = 40.0; max_retries = 50; dedup = true }

type Msg.payload +=
  | Data of { seq : int; inner : Msg.payload; size : int }
  | Ack of { seq : int }

type pending = {
  dst : Msg.node_id;
  payload : Msg.payload;
  size : int;
  mutable retries : int;
  mutable timer : Engine.event_id option;
}

type peer_state = {
  mutable next_seq : int;
  (* seq -> in-flight message awaiting ack *)
  inflight : (int, pending) Hashtbl.t;
  (* seqs already delivered to the application (receive side) *)
  seen : (int, unit) Hashtbl.t;
}

type t = {
  fabric : Fabric.t;
  config : config;
  handlers : (src:Msg.node_id -> Msg.payload -> unit) option array;
  (* peers.(src).(dst) — sender and receiver state for the src->dst flow *)
  peers : peer_state array array;
  mutable retransmissions : int;
}

let fresh_peer () =
  { next_seq = 0; inflight = Hashtbl.create 16; seen = Hashtbl.create 64 }

let fabric t = t.fabric
let retransmissions t = t.retransmissions
let set_handler t node fn = t.handlers.(node) <- Some fn

let deliver t ~dst ~src inner =
  match t.handlers.(dst) with Some fn -> fn ~src inner | None -> ()

let cancel_timer t p =
  match p.timer with
  | Some ev ->
    Engine.cancel (Fabric.engine t.fabric) ev;
    p.timer <- None
  | None -> ()

let rec arm_retransmit t ~src seq p =
  let engine = Fabric.engine t.fabric in
  p.timer <-
    Some
      (Engine.schedule engine ~after:t.config.rto_us (fun () ->
           p.timer <- None;
           (* Still unacked: retransmit unless we've given up or either end
              is dead (a dead peer is detected by membership, not us). *)
           if Hashtbl.mem t.peers.(src).(p.dst).inflight seq then begin
             if
               p.retries < t.config.max_retries
               && Fabric.is_alive t.fabric src
               && Fabric.is_alive t.fabric p.dst
             then begin
               p.retries <- p.retries + 1;
               t.retransmissions <- t.retransmissions + 1;
               Fabric.send t.fabric ~src ~dst:p.dst ~size:p.size
                 (Data { seq; inner = p.payload; size = p.size });
               arm_retransmit t ~src seq p
             end
             else Hashtbl.remove t.peers.(src).(p.dst).inflight seq
           end))

let handle t ~dst ~src payload =
  match payload with
  | Data { seq; inner; size = _ } ->
    Fabric.send t.fabric ~src:dst ~dst:src ~size:16 (Ack { seq });
    let rx = t.peers.(src).(dst) in
    if t.config.dedup then begin
      if not (Hashtbl.mem rx.seen seq) then begin
        Hashtbl.replace rx.seen seq ();
        deliver t ~dst ~src inner
      end
    end
    else deliver t ~dst ~src inner
  | Ack { seq } ->
    (* [dst] is the original sender: clear its inflight entry. *)
    let tx = t.peers.(dst).(src) in
    (match Hashtbl.find_opt tx.inflight seq with
    | Some p ->
      cancel_timer t p;
      Hashtbl.remove tx.inflight seq
    | None -> ())
  | other -> deliver t ~dst ~src other

let create ?(config = default_config) fabric =
  let n = Fabric.nodes fabric in
  let t =
    {
      fabric;
      config;
      handlers = Array.make n None;
      peers = Array.init n (fun _ -> Array.init n (fun _ -> fresh_peer ()));
      retransmissions = 0;
    }
  in
  for node = 0 to n - 1 do
    Fabric.set_handler fabric node (fun ~src payload -> handle t ~dst:node ~src payload)
  done;
  t

let send t ~src ~dst ?(size = 64) payload =
  let tx = t.peers.(src).(dst) in
  let seq = tx.next_seq in
  tx.next_seq <- seq + 1;
  let p = { dst; payload; size; retries = 0; timer = None } in
  Hashtbl.replace tx.inflight seq p;
  Fabric.send t.fabric ~src ~dst ~size (Data { seq; inner = payload; size });
  arm_retransmit t ~src seq p

let send_unreliable t ~src ~dst ?(size = 64) payload =
  Fabric.send t.fabric ~src ~dst ~size payload

let crash t node =
  Fabric.crash t.fabric node;
  let n = Fabric.nodes t.fabric in
  for dst = 0 to n - 1 do
    let tx = t.peers.(node).(dst) in
    Hashtbl.iter (fun _ p -> cancel_timer t p) tx.inflight;
    Hashtbl.reset tx.inflight
  done

let recover t node = Fabric.recover t.fabric node
