lib/net/msg.ml: Format
