lib/net/transport.mli: Fabric Msg
