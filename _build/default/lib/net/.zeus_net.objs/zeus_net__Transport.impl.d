lib/net/transport.ml: Array Fabric Hashtbl Msg Zeus_sim
