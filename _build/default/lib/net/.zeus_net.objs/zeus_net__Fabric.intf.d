lib/net/fabric.mli: Msg Zeus_sim
