lib/net/fabric.ml: Array Hashtbl Msg Zeus_sim
