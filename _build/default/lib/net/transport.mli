(** Reliable messaging over the unreliable {!Fabric}.

    The paper's datastore ships a custom reliable messaging library over
    DPDK (§3.1, §7): low-level retransmission recovers lost messages, and
    receivers deduplicate.  This module reproduces it: per-peer sequence
    numbers, ack-driven retransmission, and (optionally) receive-side
    deduplication.  Delivery is {e not} order-preserving — the Zeus
    protocols are designed to tolerate reordering, and tests can disable
    dedup to exercise their idempotency against duplication too. *)

type config = {
  rto_us : float;      (** retransmission timeout *)
  max_retries : int;   (** give up after this many retransmissions (a crashed
                           peer is the membership service's problem) *)
  dedup : bool;        (** deduplicate on the receive side *)
}

val default_config : config

type t

val create : ?config:config -> Fabric.t -> t
(** Installs itself as every node's fabric handler. *)

val fabric : t -> Fabric.t

val set_handler : t -> Msg.node_id -> (src:Msg.node_id -> Msg.payload -> unit) -> unit
(** Application-level receive handler for a node. *)

val send : t -> src:Msg.node_id -> dst:Msg.node_id -> ?size:int -> Msg.payload -> unit
(** Reliable send: retransmits until acknowledged or [max_retries] is
    exhausted. *)

val send_unreliable : t -> src:Msg.node_id -> dst:Msg.node_id -> ?size:int -> Msg.payload -> unit
(** Plain fabric send, bypassing retransmission (used for traffic where the
    protocol layer has its own replay, and in tests). *)

val crash : t -> Msg.node_id -> unit
(** Crash the node at fabric level and drop its transport state (pending
    retransmissions, dedup windows). *)

val recover : t -> Msg.node_id -> unit

val retransmissions : t -> int
(** Total retransmitted messages (observability for tests/benches). *)
