(** Message payloads carried by the network substrate.

    [payload] is an extensible variant: each protocol library adds its own
    constructors (ownership REQ/INV/ACK/VAL, reliable-commit R-INV/..., etc.)
    and pattern-matches only on those, so the substrate stays oblivious to
    protocol contents. *)

type node_id = int

type payload = ..

val pp_node : Format.formatter -> node_id -> unit
