type node_id = int
type payload = ..

let pp_node ppf n = Format.fprintf ppf "n%d" n
