module Engine = Zeus_sim.Engine
module Rng = Zeus_sim.Rng

type config = {
  base_latency_us : float;
  jitter_us : float;
  bandwidth_gbps : float;
  loss_prob : float;
  dup_prob : float;
  reorder_prob : float;
  reorder_delay_us : float;
}

let default_config =
  {
    base_latency_us = 4.0;
    jitter_us = 0.3;
    bandwidth_gbps = 40.0;
    loss_prob = 0.0;
    dup_prob = 0.0;
    reorder_prob = 0.0;
    reorder_delay_us = 10.0;
  }

type t = {
  engine : Engine.t;
  nodes : int;
  config : config;
  rng : Rng.t;
  handlers : (src:Msg.node_id -> Msg.payload -> unit) option array;
  alive : bool array;
  partitions : (int * int, unit) Hashtbl.t;
  mutable messages_sent : int;
  mutable bytes_sent : int;
  mutable messages_dropped : int;
}

let create engine ~nodes config =
  assert (nodes > 0);
  {
    engine;
    nodes;
    config;
    rng = Engine.fork_rng engine;
    handlers = Array.make nodes None;
    alive = Array.make nodes true;
    partitions = Hashtbl.create 8;
    messages_sent = 0;
    bytes_sent = 0;
    messages_dropped = 0;
  }

let engine t = t.engine
let nodes t = t.nodes
let config t = t.config
let set_handler t node fn = t.handlers.(node) <- Some fn
let is_alive t node = t.alive.(node)

let crash t node = t.alive.(node) <- false
let recover t node = t.alive.(node) <- true

let pair a b = if a < b then (a, b) else (b, a)
let partition t a b = Hashtbl.replace t.partitions (pair a b) ()
let heal t a b = Hashtbl.remove t.partitions (pair a b)
let heal_all t = Hashtbl.reset t.partitions
let partitioned t a b = Hashtbl.mem t.partitions (pair a b)

let messages_sent t = t.messages_sent
let bytes_sent t = t.bytes_sent
let messages_dropped t = t.messages_dropped

let reset_counters t =
  t.messages_sent <- 0;
  t.bytes_sent <- 0;
  t.messages_dropped <- 0

let deliver t ~src ~dst payload =
  (* Checked at arrival time: a node that crashed in flight drops the
     message, matching a NIC going dark. *)
  if t.alive.(dst) && not (partitioned t src dst) then begin
    match t.handlers.(dst) with
    | Some fn -> fn ~src payload
    | None -> ()
  end
  else t.messages_dropped <- t.messages_dropped + 1

let latency t ~size =
  let c = t.config in
  let serialize =
    (* bytes -> µs at [bandwidth] Gbps: size * 8 bits / (gbps * 1000 bits/µs) *)
    float_of_int size *. 8.0 /. (c.bandwidth_gbps *. 1000.0)
  in
  c.base_latency_us +. serialize +. Rng.float t.rng c.jitter_us

let send t ~src ~dst ?(size = 64) payload =
  t.messages_sent <- t.messages_sent + 1;
  t.bytes_sent <- t.bytes_sent + size;
  if not t.alive.(src) then t.messages_dropped <- t.messages_dropped + 1
  else if src = dst then
    ignore (Engine.schedule t.engine ~after:0.05 (fun () -> deliver t ~src ~dst payload))
  else begin
    let c = t.config in
    if Rng.chance t.rng c.loss_prob then t.messages_dropped <- t.messages_dropped + 1
    else begin
      let base = latency t ~size in
      let extra =
        if Rng.chance t.rng c.reorder_prob then Rng.float t.rng c.reorder_delay_us
        else 0.0
      in
      let arrival = base +. extra in
      ignore (Engine.schedule t.engine ~after:arrival (fun () -> deliver t ~src ~dst payload));
      if Rng.chance t.rng c.dup_prob then begin
        let dup_arrival = latency t ~size +. Rng.float t.rng c.reorder_delay_us in
        ignore
          (Engine.schedule t.engine ~after:dup_arrival (fun () ->
               deliver t ~src ~dst payload))
      end
    end
  end
