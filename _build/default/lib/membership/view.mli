(** A membership view: the epoch id and the set of live nodes.

    Every view change increments [epoch]; protocol messages carry the
    sender's epoch and receivers drop messages from other epochs (§3.1). *)

type t = { epoch : int; live : bool array }

val initial : nodes:int -> t
val is_live : t -> Zeus_net.Msg.node_id -> bool
val live_list : t -> Zeus_net.Msg.node_id list
val live_count : t -> int
val without : t -> Zeus_net.Msg.node_id -> t
(** New view with [epoch + 1] and the node marked dead. *)

val with_node : t -> Zeus_net.Msg.node_id -> t
(** New view with [epoch + 1] and the node marked live (rejoin). *)

val pp : Format.formatter -> t -> unit
