type t = { epoch : int; live : bool array }

let initial ~nodes = { epoch = 0; live = Array.make nodes true }
let is_live t n = n >= 0 && n < Array.length t.live && t.live.(n)

let live_list t =
  let acc = ref [] in
  for i = Array.length t.live - 1 downto 0 do
    if t.live.(i) then acc := i :: !acc
  done;
  !acc

let live_count t = Array.fold_left (fun acc b -> if b then acc + 1 else acc) 0 t.live

let without t n =
  let live = Array.copy t.live in
  live.(n) <- false;
  { epoch = t.epoch + 1; live }

let with_node t n =
  let live = Array.copy t.live in
  live.(n) <- true;
  { epoch = t.epoch + 1; live }

let pp ppf t =
  Format.fprintf ppf "epoch=%d live=[%a]" t.epoch
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ";")
       Format.pp_print_int)
    (live_list t)
