lib/membership/service.ml: Array List View Zeus_net Zeus_sim
