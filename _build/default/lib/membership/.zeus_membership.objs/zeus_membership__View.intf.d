lib/membership/view.mli: Format Zeus_net
