lib/membership/service.mli: View Zeus_net
