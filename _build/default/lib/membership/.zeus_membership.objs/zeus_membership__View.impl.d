lib/membership/view.ml: Array Format
