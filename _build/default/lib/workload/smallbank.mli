(** Smallbank (§8.2): write-intensive financial transactions.

    Every account is two objects (checking and savings).  The standard mix
    is 85 % write transactions: Amalgamate 15 %, DepositChecking 15 %,
    SendPayment 25 %, TransactSavings 15 %, WriteCheck 15 %, and Balance
    15 % (read-only).

    Accounts are partitioned across nodes; [remote_frac] is the probability
    that a write transaction targets accounts homed on another node —
    modelling the gradual access-pattern change of Figure 8 (Zeus then
    migrates ownership; the static-sharded baselines execute a distributed
    transaction instead). *)

type t

val create :
  accounts_per_node:int ->
  nodes:int ->
  ?remote_frac:float ->
  ?local_reads:bool ->
  Zeus_sim.Rng.t ->
  t
(** [local_reads] (default true): Balance transactions stay on a replica;
    set false for static-sharded baselines. *)

val checking_key : t -> int -> int
val savings_key : t -> int -> int
val total_keys : t -> int
val home_of_key : t -> int -> int
val initial_value : Zeus_store.Value.t

val gen : t -> home:int -> Spec.t
(** One transaction from the mix, issued from node [home]. *)

val table_summary : string * int * int * int * int
(** Table 2 row: (name, tables, columns, tx types, read-tx %). *)
