module Node = Zeus_core.Node
module Value = Zeus_store.Value

type t = {
  reads : int list;
  writes : int list;
  payload : int;
  exec_us : float;
  read_only : bool;
}

let write_txn ?(reads = []) ?(payload = 64) ?(exec_us = 0.5) writes =
  { reads; writes; payload; exec_us; read_only = false }

let read_txn ?(exec_us = 0.3) reads =
  { reads; writes = []; payload = 0; exec_us; read_only = true }

let bump payload old =
  let counter = try Value.to_int old with Invalid_argument _ -> 0 in
  Value.padded [ counter + 1 ] ~size:payload

let run_on_zeus node ~thread spec k =
  let body ctx commit =
    let rec do_reads = function
      | [] -> do_writes spec.writes
      | key :: rest -> Node.read ctx key (fun _ -> do_reads rest)
    and do_writes = function
      | [] -> commit ()
      | key :: rest -> Node.read_write ctx key (bump spec.payload) (fun _ -> do_writes rest)
    in
    do_reads spec.reads
  in
  if spec.read_only then Node.run_read node ~thread ~exec_us:spec.exec_us ~body k
  else Node.run_write node ~thread ~exec_us:spec.exec_us ~body k
