(** Synthetic peer-to-peer payment graph (§2.2, §8 "Venmo transactions").

    Substitutes the public Venmo dataset: users form small communities
    (friend groups) with most payments inside the community and a small
    inter-community fraction; communities are placed whole onto nodes.
    Calibrated so the cross-node transaction fraction lands near the
    paper's 0.7 % (3 nodes) and 1.2 % (6 nodes). *)

type t

val create :
  ?users:int -> ?community_size:int -> ?inter_community:float -> nodes:int -> Zeus_sim.Rng.t -> t

val node_of_user : t -> int -> int

val gen_pair : t -> int * int
(** (payer, payee) of one payment. *)

val remote_fraction : ?samples:int -> t -> float
(** Monte-Carlo estimate of the cross-node payment fraction. *)
