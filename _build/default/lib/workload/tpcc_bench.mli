(** Executable TPC-C (an extension — the paper analyses TPC-C's locality
    but defers running it, §8 "we leave the experimental evaluation of
    TPC-C for future work because our current implementation of Zeus does
    not support range queries").

    This is the standard research-prototype adaptation that avoids range
    scans: customer look-ups are by id, and each district object embeds its
    recent-order and undelivered-order lists, so Delivery and Stock-Level
    run on point accesses.  The five transactions keep their standard mix
    (New-Order 45 %, Payment 43 %, Order-Status 4 %, Delivery 4 %,
    Stock-Level 4 %) and the spec's remote probabilities (1 % of order
    lines supply from a remote warehouse, 15 % of payments touch a remote
    customer).

    Warehouses are partitioned across nodes with all their rows
    (districts, customers, stocks) co-located — the sharding the paper's
    locality analysis assumes. *)

type t

val create :
  warehouses:int ->
  nodes:int ->
  ?customers_per_district:int ->
  ?items_per_warehouse:int ->
  Zeus_sim.Rng.t ->
  t

val nodes : t -> int
val home_of_warehouse : t -> int -> int

val home_of_key : t -> int -> int
(** Static (warehouse-partitioned) home of any key — the baseline's
    [primary_of]. *)

val populate : t -> Zeus_core.Cluster.t -> unit
(** Install warehouses, districts, customers and stocks with their initial
    values (co-located per warehouse). *)

val issue :
  t -> Zeus_core.Node.t -> thread:int -> (Zeus_store.Txn.outcome -> unit) -> unit
(** Run one transaction from the mix on a warehouse local to the node
    (remote accesses arise from the spec's remote-line/customer rules). *)

val gen_spec : t -> home:int -> Spec.t
(** Key-set approximation of the same mix for the baseline engine. *)

(** Statistics for validating against the paper's locality analysis. *)

val new_orders : t -> int
val payments : t -> int
val remote_line_fraction : t -> float
(** Fraction of issued stock lines that touched a remote warehouse. *)
