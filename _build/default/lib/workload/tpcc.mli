(** Analytical TPC-C locality model (§8 "Locality in workloads").

    TPC-C is analysed, not executed (the paper defers running it because
    Zeus lacks range queries; so do we — documented in DESIGN.md).  With
    warehouse-partitioned sharding only New-Order (1 % of item lines hit a
    remote warehouse) and Payment (15 % of customer look-ups are remote)
    can touch remote data.  Two metrics:
    - fraction of {e transactions} touching any remote object;
    - fraction of {e accesses} that are remote (the metric closest to the
      paper's reported 2.45 %, since an ownership request is per object). *)

val new_order_weight : float
val payment_weight : float

val remote_txn_fraction :
  ?remote_item_prob:float -> ?items_per_order:int -> ?remote_customer_prob:float -> unit -> float

val remote_access_fraction :
  ?remote_item_prob:float ->
  ?items_per_order:int ->
  ?accesses_per_new_order:int ->
  ?accesses_per_payment:int ->
  ?remote_customer_prob:float ->
  unit ->
  float
