module Rng = Zeus_sim.Rng
module Value = Zeus_store.Value

type t = {
  contestants : int;
  voters : int;
  nodes : int;
  hot_contestant : int option;
  hot_frac : float;
  rng : Rng.t;
}

let create ~contestants ~voters ~nodes ?(hot_contestant = None) ?(hot_frac = 0.0) rng =
  { contestants; voters; nodes; hot_contestant; hot_frac; rng }

let contestant_key _t c = c
let voter_key t v = t.contestants + v
let total_keys t = t.contestants + t.voters

let home_of_key t key =
  if key < t.contestants then key * t.nodes / t.contestants
  else (key - t.contestants) * t.nodes / t.voters

let initial_value = Value.padded [ 0 ] ~size:32

let voters_per_node t = t.voters / t.nodes

(* The application-level load balancer routes votes for a contestant to
   the node that owns it, and further binds each contestant to one thread
   there to maximize local-commit concurrency (§3.1, §7). *)
let local_contestants t home =
  List.filter (fun c -> home_of_key t c = home) (List.init t.contestants (fun c -> c))

let gen t ~home ~thread ~threads =
  let voter = (home * voters_per_node t) + Rng.int t.rng (voters_per_node t) in
  let contestant =
    match t.hot_contestant with
    | Some hot when Rng.chance t.rng t.hot_frac -> hot
    | _ -> (
      let cands =
        List.filter (fun c -> c mod threads = thread) (local_contestants t home)
      in
      let cands = if cands = [] then local_contestants t home else cands in
      match cands with
      | [] -> 0
      | l -> List.nth l (Rng.int t.rng (List.length l)))
  in
  Spec.write_txn ~payload:32 ~exec_us:0.5
    [ contestant_key t contestant; voter_key t voter ]

let table_summary = ("Voter", 3, 9, 1, 0)
