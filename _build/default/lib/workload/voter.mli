(** Voter (§8.4): a real-time phone-voting system with popularity skew.

    Each vote updates two objects: the contestant's total and the voter's
    history.  Contestant keys are [0 .. contestants - 1]; voter keys follow.
    The Figure 10/11 experiments move contestant/voter objects between nodes
    with {!Zeus_core.Node.acquire_ownership} while votes flow. *)

type t

val create :
  contestants:int ->
  voters:int ->
  nodes:int ->
  ?hot_contestant:int option ->
  ?hot_frac:float ->
  Zeus_sim.Rng.t ->
  t
(** [hot_contestant] (with [hot_frac] of the votes) models the popular
    contestant of Figure 11. *)

val contestant_key : t -> int -> int
val voter_key : t -> int -> int
val total_keys : t -> int
val home_of_key : t -> int -> int
val initial_value : Zeus_store.Value.t

val gen : t -> home:int -> thread:int -> threads:int -> Spec.t
(** A vote from a voter homed at [home]; the contestant is picked among
    those the load balancer routes to ([home], [thread]). *)

val local_contestants : t -> int -> int list

val table_summary : string * int * int * int * int
