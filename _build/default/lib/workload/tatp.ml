module Rng = Zeus_sim.Rng
module Value = Zeus_store.Value

type t = {
  subscribers_per_node : int;
  nodes : int;
  remote_frac : float;
  local_reads : bool;
  rng : Rng.t;
}

let create ~subscribers_per_node ~nodes ?(remote_frac = 0.0) ?(local_reads = true) rng =
  { subscribers_per_node; nodes; remote_frac; local_reads; rng }

let sub_key _t s = 3 * s
let access_key _t s = (3 * s) + 1
let fwd_key _t s = (3 * s) + 2
let total_keys t = 3 * t.subscribers_per_node * t.nodes
let home_of_key t key = key / 3 / t.subscribers_per_node
let initial_value = Value.padded [ 7 ] ~size:48

let local_sub t node =
  (node * t.subscribers_per_node) + Rng.int t.rng t.subscribers_per_node

let other_node t home =
  if t.nodes = 1 then home
  else begin
    let n = Rng.int t.rng (t.nodes - 1) in
    if n >= home then n + 1 else n
  end

let sub_for_write t home =
  if Rng.chance t.rng t.remote_frac then local_sub t (other_node t home)
  else local_sub t home

(* Zeus: the load balancer plus ownership migration keep a subscriber's
   read traffic on a node that replicates it; static-sharded baselines
   issue remote reads under the same access drift (§8.3). *)
let sub_for_read t home = if t.local_reads then local_sub t home else sub_for_write t home

let gen t ~home =
  let p = Rng.float t.rng 1.0 in
  if p < 0.35 then
    (* GET_SUBSCRIBER_DATA *)
    Spec.read_txn [ sub_key t (sub_for_read t home) ]
  else if p < 0.45 then
    (* GET_NEW_DESTINATION *)
    Spec.read_txn [ fwd_key t (sub_for_read t home) ]
  else if p < 0.80 then
    (* GET_ACCESS_DATA *)
    Spec.read_txn [ access_key t (sub_for_read t home) ]
  else if p < 0.82 then begin
    (* UPDATE_SUBSCRIBER_DATA: subscriber bit + special facility. *)
    let s = sub_for_write t home in
    Spec.write_txn ~payload:48 ~exec_us:0.6 [ sub_key t s; access_key t s ]
  end
  else if p < 0.96 then
    (* UPDATE_LOCATION *)
    Spec.write_txn ~payload:48 ~exec_us:0.6 [ sub_key t (sub_for_write t home) ]
  else if p < 0.98 then begin
    (* INSERT_CALL_FORWARDING: read subscriber, write call-forwarding. *)
    let s = sub_for_write t home in
    Spec.write_txn ~payload:48 ~exec_us:0.6 ~reads:[ sub_key t s ] [ fwd_key t s ]
  end
  else
    (* DELETE_CALL_FORWARDING *)
    Spec.write_txn ~payload:48 ~exec_us:0.6 [ fwd_key t (sub_for_write t home) ]

let table_summary = ("TATP", 4, 51, 7, 80)
