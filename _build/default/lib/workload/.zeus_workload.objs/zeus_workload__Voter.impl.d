lib/workload/voter.ml: List Spec Zeus_sim Zeus_store
