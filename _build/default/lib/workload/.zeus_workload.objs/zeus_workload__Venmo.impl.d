lib/workload/venmo.ml: Zeus_sim
