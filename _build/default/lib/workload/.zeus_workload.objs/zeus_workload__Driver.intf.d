lib/workload/driver.mli: Format Zeus_core
