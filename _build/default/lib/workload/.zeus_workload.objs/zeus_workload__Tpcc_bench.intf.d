lib/workload/tpcc_bench.mli: Spec Zeus_core Zeus_sim Zeus_store
