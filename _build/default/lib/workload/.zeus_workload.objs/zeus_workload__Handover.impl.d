lib/workload/handover.ml: List Spec Zeus_sim Zeus_store
