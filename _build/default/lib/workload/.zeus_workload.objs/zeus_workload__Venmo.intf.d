lib/workload/venmo.mli: Zeus_sim
