lib/workload/mobility.ml: Float List Zeus_sim
