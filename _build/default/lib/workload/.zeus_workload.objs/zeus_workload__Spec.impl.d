lib/workload/spec.ml: Zeus_core Zeus_store
