lib/workload/smallbank.mli: Spec Zeus_sim Zeus_store
