lib/workload/tatp.mli: Spec Zeus_sim Zeus_store
