lib/workload/driver.ml: Format List Option Zeus_core Zeus_sim
