lib/workload/tpcc_bench.ml: List Spec Zeus_core Zeus_sim Zeus_store
