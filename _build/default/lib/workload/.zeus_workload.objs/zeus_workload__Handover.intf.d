lib/workload/handover.mli: Spec Zeus_sim Zeus_store
