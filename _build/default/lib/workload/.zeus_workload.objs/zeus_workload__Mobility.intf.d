lib/workload/mobility.mli: Zeus_sim
