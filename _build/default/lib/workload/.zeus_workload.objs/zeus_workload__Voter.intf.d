lib/workload/voter.mli: Spec Zeus_sim Zeus_store
