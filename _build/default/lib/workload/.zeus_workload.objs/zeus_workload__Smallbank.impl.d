lib/workload/smallbank.ml: Spec Zeus_sim Zeus_store
