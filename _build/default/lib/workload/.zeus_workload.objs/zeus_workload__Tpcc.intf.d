lib/workload/tpcc.mli:
