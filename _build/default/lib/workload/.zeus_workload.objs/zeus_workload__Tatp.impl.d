lib/workload/tatp.ml: Spec Zeus_sim Zeus_store
