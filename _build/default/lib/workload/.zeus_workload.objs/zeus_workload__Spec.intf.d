lib/workload/spec.mli: Zeus_core Zeus_store
