lib/workload/tpcc.ml:
