module Rng = Zeus_sim.Rng
module Value = Zeus_store.Value

type t = {
  accounts_per_node : int;
  nodes : int;
  remote_frac : float;
  local_reads : bool;
  rng : Rng.t;
}

let create ~accounts_per_node ~nodes ?(remote_frac = 0.0) ?(local_reads = true) rng =
  { accounts_per_node; nodes; remote_frac; local_reads; rng }

(* Account [a]'s two objects. *)
let checking_key _t a = 2 * a
let savings_key _t a = (2 * a) + 1
let total_keys t = 2 * t.accounts_per_node * t.nodes
let home_of_key t key = key / 2 / t.accounts_per_node
let initial_value = Value.padded [ 1000 ] ~size:64

(* Pick an account homed at [node]. *)
let local_account t node = (node * t.accounts_per_node) + Rng.int t.rng t.accounts_per_node

let other_node t home =
  if t.nodes = 1 then home
  else begin
    let n = Rng.int t.rng (t.nodes - 1) in
    if n >= home then n + 1 else n
  end

(* For a write transaction: with probability [remote_frac] the access
   pattern has drifted and the account lives on another node. *)
let account_for_write t home =
  if Rng.chance t.rng t.remote_frac then local_account t (other_node t home)
  else local_account t home

let account_for_read t home =
  if t.local_reads then local_account t home else account_for_write t home

let exec = 0.8

let gen t ~home =
  let p = Rng.float t.rng 1.0 in
  if p < 0.15 then begin
    (* Balance: read-only, both objects of one account. *)
    let a = account_for_read t home in
    Spec.read_txn ~exec_us:0.5 [ checking_key t a; savings_key t a ]
  end
  else if p < 0.30 then begin
    (* Amalgamate: zero out one account into another's checking. *)
    let src = account_for_write t home in
    let dst = local_account t home in
    Spec.write_txn ~exec_us:exec [ checking_key t src; savings_key t src; checking_key t dst ]
  end
  else if p < 0.45 then
    (* DepositChecking *)
    Spec.write_txn ~exec_us:exec [ checking_key t (account_for_write t home) ]
  else if p < 0.70 then begin
    (* SendPayment: checking of two accounts. *)
    let src = account_for_write t home in
    let dst = local_account t home in
    Spec.write_txn ~exec_us:exec [ checking_key t src; checking_key t dst ]
  end
  else if p < 0.85 then
    (* TransactSavings *)
    Spec.write_txn ~exec_us:exec [ savings_key t (account_for_write t home) ]
  else begin
    (* WriteCheck: read savings, write checking. *)
    let a = account_for_write t home in
    Spec.write_txn ~exec_us:exec ~reads:[ savings_key t a ] [ checking_key t a ]
  end

let table_summary = ("Smallbank", 3, 6, 6, 15)
