module Rng = Zeus_sim.Rng

type params = {
  grid : int;
  driver_frac : float;
  driver_trip_km : float;
  nondriver_trip_km : float;
}

let default_params =
  { grid = 32; driver_frac = 0.4; driver_trip_km = 20.0; nondriver_trip_km = 4.0 }

let stations p = p.grid * p.grid

(* Contiguous 2-D tiling: cut the grid into [a × b] blocks with a * b =
   nodes, a and b as balanced as possible — geographic sharding keeps
   nearby stations on the same node (§2.2). *)
let tiling nodes =
  let rec best a =
    if a = 0 then (1, nodes)
    else if nodes mod a = 0 then (a, nodes / a)
    else best (a - 1)
  in
  best (int_of_float (sqrt (float_of_int nodes)))

let tile_of p ~nodes (x, y) =
  let a, b = tiling nodes in
  (* a rows of b columns *)
  let row = min (a - 1) (y * a / p.grid) in
  let col = min (b - 1) (x * b / p.grid) in
  (row * b) + col

let station_of_cell p (x, y) = (y * p.grid) + x

let clamp p v = if v < 0 then 0 else if v >= p.grid then p.grid - 1 else v

let walk p rng =
  let x0 = Rng.float rng (float_of_int p.grid) in
  let y0 = Rng.float rng (float_of_int p.grid) in
  let angle = Rng.float rng (2.0 *. Float.pi) in
  let len =
    if Rng.chance rng p.driver_frac then Rng.exponential rng ~mean:p.driver_trip_km
    else Rng.exponential rng ~mean:p.nondriver_trip_km
  in
  let dx = cos angle and dy = sin angle in
  let steps = int_of_float (len /. 0.25) in
  let cells = ref [] in
  let last = ref (-1, -1) in
  for i = 0 to steps do
    let fx = x0 +. (dx *. 0.25 *. float_of_int i) in
    let fy = y0 +. (dy *. 0.25 *. float_of_int i) in
    let cx = clamp p (int_of_float fx) and cy = clamp p (int_of_float fy) in
    if (cx, cy) <> !last then begin
      last := (cx, cy);
      cells := (cx, cy) :: !cells
    end
  done;
  List.rev !cells

let sample_trip ?(params = default_params) ~nodes rng =
  List.map
    (fun cell -> (station_of_cell params cell, tile_of params ~nodes cell))
    (walk params rng)

let remote_handover_fraction ?(params = default_params) ?(trips = 20_000) ~nodes rng =
  let handovers = ref 0 and remote = ref 0 in
  for _ = 1 to trips do
    let cells = walk params rng in
    let rec count = function
      | a :: (b :: _ as rest) ->
        incr handovers;
        if tile_of params ~nodes a <> tile_of params ~nodes b then incr remote;
        count rest
      | [ _ ] | [] -> ()
    in
    count cells
  done;
  if !handovers = 0 then 0.0 else float_of_int !remote /. float_of_int !handovers
