(** Closed-loop load driver.

    Models the paper's setup of "enough colocated clients to saturate each
    evaluated system" (§8): every app thread of every participating node
    issues transactions back-to-back.  Only completions inside the
    measurement window (after warm-up) are counted. *)

type result = {
  committed : int;
  aborted : int;
  duration_us : float;
  mtps : float;          (** committed transactions per µs × 10⁶ / 10⁶ = Mtps *)
  abort_rate : float;
  lat_p50_us : float;    (** committed-transaction latency percentiles *)
  lat_p99_us : float;
}

val pp_result : Format.formatter -> result -> unit

val run :
  Zeus_core.Cluster.t ->
  ?nodes:int list ->
  ?threads:int ->
  warmup_us:float ->
  duration_us:float ->
  issue:(Zeus_core.Node.t -> thread:int -> seq:int -> (bool -> unit) -> unit) ->
  unit ->
  result
(** [issue node ~thread ~seq done_] must run exactly one transaction and
    call [done_ committed] at its completion.  [nodes] defaults to all,
    [threads] to the configured app threads per node. *)
