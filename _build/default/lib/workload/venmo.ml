module Rng = Zeus_sim.Rng

type t = {
  users : int;
  community_size : int;
  inter_community : float;
  nodes : int;
  rng : Rng.t;
}

let create ?(users = 100_000) ?(community_size = 30) ?(inter_community = 0.013) ~nodes
    rng =
  { users; community_size; inter_community; nodes; rng }

let community_of t u = u / t.community_size
let communities t = (t.users + t.community_size - 1) / t.community_size

(* Whole communities are placed on nodes (the locality-preserving sharding
   of §2.2). *)
let node_of_user t u = community_of t u mod t.nodes

let gen_pair t =
  let payer = Rng.int t.rng t.users in
  let payee =
    if Rng.chance t.rng t.inter_community then Rng.int t.rng t.users
    else begin
      let c = community_of t payer in
      let base = c * t.community_size in
      let span = min t.community_size (t.users - base) in
      base + Rng.int t.rng span
    end
  in
  let payee = if payee = payer then (payee + 1) mod t.users else payee in
  ignore (communities t);
  (payer, payee)

let remote_fraction ?(samples = 200_000) t =
  let remote = ref 0 in
  for _ = 1 to samples do
    let a, b = gen_pair t in
    if node_of_user t a <> node_of_user t b then incr remote
  done;
  float_of_int !remote /. float_of_int samples
