(** TATP (§8.3): read-intensive telecom benchmark — 80 % read and 20 %
    write transactions over subscriber records.

    Each subscriber is three objects (subscriber record, access info, call
    forwarding).  As in Figure 9, [remote_frac] is the probability that a
    {e write} transaction targets a subscriber homed on another node;
    read-only transactions are always routed to a replica (the
    application-level load balancer keeps them local, §3.1). *)

type t

val create :
  subscribers_per_node:int ->
  nodes:int ->
  ?remote_frac:float ->
  ?local_reads:bool ->
  Zeus_sim.Rng.t ->
  t
(** [local_reads] (default true): read transactions stay on a replica (the
    Zeus behaviour, where the LB and ownership migration preserve read
    locality); set false for static-sharded baselines whose reads drift
    remote with [remote_frac]. *)

val sub_key : t -> int -> int
val access_key : t -> int -> int
val fwd_key : t -> int -> int
val total_keys : t -> int
val home_of_key : t -> int -> int
val initial_value : Zeus_store.Value.t

val gen : t -> home:int -> Spec.t
val table_summary : string * int * int * int * int
