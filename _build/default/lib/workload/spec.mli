(** A transaction described by its key sets.

    Benchmarks generate [t] values; the same spec can then be executed on
    Zeus ({!run_on_zeus}) or on the baseline distributed-commit engine,
    which is how the paper's comparison figures keep both sides on
    identical workloads. *)

type t = {
  reads : int list;   (** keys read but not written *)
  writes : int list;  (** keys read and written *)
  payload : int;      (** bytes written per modified object *)
  exec_us : float;    (** compute time of the transaction logic *)
  read_only : bool;
}

val write_txn : ?reads:int list -> ?payload:int -> ?exec_us:float -> int list -> t
(** [write_txn ~reads writes] *)

val read_txn : ?exec_us:float -> int list -> t

val run_on_zeus :
  Zeus_core.Node.t -> thread:int -> t -> (Zeus_store.Txn.outcome -> unit) -> unit
(** Execute the spec as a Zeus transaction: open every read key, then
    read-modify-write every write key (bumping a counter, padding to
    [payload] bytes), and commit. *)
