let new_order_weight = 0.45
let payment_weight = 0.43

let remote_txn_fraction ?(remote_item_prob = 0.01) ?(items_per_order = 10)
    ?(remote_customer_prob = 0.15) () =
  let no_remote = 1.0 -. ((1.0 -. remote_item_prob) ** float_of_int items_per_order) in
  (new_order_weight *. no_remote) +. (payment_weight *. remote_customer_prob)

let remote_access_fraction ?(remote_item_prob = 0.01) ?(items_per_order = 10)
    ?(accesses_per_new_order = 23) ?(accesses_per_payment = 4)
    ?(remote_customer_prob = 0.15) () =
  (* Remote accesses per New-Order: each of the ~10 stock lines is remote
     with probability 1%; per Payment: the customer row (15%). *)
  let no_remote_accesses = float_of_int items_per_order *. remote_item_prob in
  let pay_remote_accesses = remote_customer_prob in
  let weighted_remote =
    (new_order_weight *. no_remote_accesses) +. (payment_weight *. pay_remote_accesses)
  in
  let weighted_total =
    (new_order_weight *. float_of_int accesses_per_new_order)
    +. (payment_weight *. float_of_int accesses_per_payment)
    +. ((1.0 -. new_order_weight -. payment_weight) *. 5.0)
  in
  weighted_remote /. weighted_total
