(** Synthetic commuter mobility model (§2.2, §8 "Boston cellular
    handovers").

    Substitutes the Boston metropolitan traces of [Calabrese et al.]: base
    stations sit on a 1 km grid sharded across nodes in contiguous 2-D
    tiles; a trip is a straight line with random origin and direction whose
    length follows the reported statistics (drivers average 20 km per trip,
    non-drivers 4 km, 5 one-way trips/day).  A handover happens at every
    cell crossing; it is {e remote} when the two cells belong to different
    nodes.  The paper reports up to 6.2 % remote handovers at six nodes. *)

type params = {
  grid : int;            (** grid side in cells (1 km spacing); ~1000 stations *)
  driver_frac : float;
  driver_trip_km : float;
  nondriver_trip_km : float;
}

val default_params : params

val tile_of : params -> nodes:int -> int * int -> int
(** Which node owns the cell at [(x, y)] (contiguous 2-D tiling). *)

val station_of_cell : params -> int * int -> int
(** Station (cell) index of a grid cell. *)

val stations : params -> int

val remote_handover_fraction : ?params:params -> ?trips:int -> nodes:int -> Zeus_sim.Rng.t -> float
(** Monte-Carlo estimate of the fraction of handovers crossing nodes. *)

val sample_trip :
  ?params:params -> nodes:int -> Zeus_sim.Rng.t -> (int * int) list
(** The sequence of [(station, node)] cells visited by one random trip. *)
