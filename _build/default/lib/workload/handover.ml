module Rng = Zeus_sim.Rng
module Value = Zeus_store.Value

type t = {
  users_per_node : int;
  stations_per_node : int;
  nodes : int;
  handover_frac : float;
  remote_handover_frac : float;
  rng : Rng.t;
}

let create ~users_per_node ~stations_per_node ~nodes ~handover_frac
    ~remote_handover_frac rng =
  { users_per_node; stations_per_node; nodes; handover_frac; remote_handover_frac; rng }

let user_key _t u = u
let station_key t b = (t.users_per_node * t.nodes) + b
let total_keys t = (t.users_per_node + t.stations_per_node) * t.nodes

let home_of_key t key =
  let users = t.users_per_node * t.nodes in
  if key < users then key / t.users_per_node
  else (key - users) / t.stations_per_node

let user_context = Value.padded [ 0 ] ~size:400
let station_context = Value.padded [ 0 ] ~size:256
let is_user_key t key = key < t.users_per_node * t.nodes

(* Station contexts are written by every operation, so the load balancer
   binds each station to one thread of its node (§7). *)
let local_station t home thread threads =
  let base = home * t.stations_per_node in
  let mine =
    let rec collect i acc =
      if i >= t.stations_per_node then acc
      else collect (i + 1) (if i mod threads = thread then i :: acc else acc)
    in
    collect 0 []
  in
  match mine with
  | [] -> base + Rng.int t.rng t.stations_per_node
  | l -> base + List.nth l (Rng.int t.rng (List.length l))

let local_user t home = (home * t.users_per_node) + Rng.int t.rng t.users_per_node

let neighbor t home = if t.nodes = 1 then home else (home + 1) mod t.nodes

let exec = 1.5 (* parsing + 3GPP message handling per transaction, µs *)

let gen t ~home ~thread ~threads =
  let p = Rng.float t.rng 1.0 in
  if p < t.handover_frac then begin
    let remote = Rng.chance t.rng t.remote_handover_frac in
    if remote then begin
      (* Remote handover seen from the new node: the start transaction ran
         on the neighbouring node (counted there); the end transaction
         acquires the incoming user's context. *)
      let user = local_user t (neighbor t home) in
      let new_bs = local_station t home thread threads in
      let t1 =
        Spec.write_txn ~payload:400 ~exec_us:exec
          [ user_key t user; station_key t new_bs ]
      in
      (t1, None)
    end
    else begin
      (* Local handover: both transactions on this node. *)
      let user = local_user t home in
      let old_bs = local_station t home thread threads in
      let new_bs = local_station t home thread threads in
      let t1 =
        Spec.write_txn ~payload:400 ~exec_us:exec
          [ user_key t user; station_key t old_bs ]
      in
      let t2 =
        Spec.write_txn ~payload:400 ~exec_us:exec
          [ user_key t user; station_key t new_bs ]
      in
      (t1, Some t2)
    end
  end
  else begin
    (* Service request or release: user + its current station, local. *)
    let user = local_user t home in
    let bs = local_station t home thread threads in
    ( Spec.write_txn ~payload:400 ~exec_us:exec [ user_key t user; station_key t bs ],
      None )
  end

let table_summary = ("Handovers", 5, 36, 4, 0)
