(** Cellular handovers benchmark (§8.1), modelled on 3GPP control-plane
    operations.

    Objects: one ~400 B context per user, one context per base station.
    Operations (all write transactions, committing ~400 B):
    - {e service request} / {e release}: update the user's context and the
      context of its current base station;
    - {e handover}: two transactions — start (user + old station, on the old
      station's node) and end (user + new station, on the new station's
      node).  A {e remote} handover crosses nodes: the end transaction must
      acquire ownership of the user's context (1 ownership request).

    [handover_frac] is the handover share of all requests (2.5 % typical,
    5 % = doubled mobility); the remote share of handovers comes from the
    {!Mobility} model. *)

type t

val create :
  users_per_node:int ->
  stations_per_node:int ->
  nodes:int ->
  handover_frac:float ->
  remote_handover_frac:float ->
  Zeus_sim.Rng.t ->
  t

val user_key : t -> int -> int
val station_key : t -> int -> int
val total_keys : t -> int
val home_of_key : t -> int -> int
val user_context : Zeus_store.Value.t
val station_context : Zeus_store.Value.t
val is_user_key : t -> int -> bool

val gen : t -> home:int -> thread:int -> threads:int -> Spec.t * Spec.t option
(** One operation issued at node [home]: the transaction, plus the second
    transaction when the operation is a handover. *)

val table_summary : string * int * int * int * int
