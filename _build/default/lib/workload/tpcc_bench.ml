module Rng = Zeus_sim.Rng
module Cluster = Zeus_core.Cluster
module Node = Zeus_core.Node
module Value = Zeus_store.Value

let districts_per_wh = 10
let recent_cap = 20

type t = {
  warehouses : int;
  nodes : int;
  customers_per_district : int;
  items_per_warehouse : int;
  rng : Rng.t;
  mutable order_seq : int;
  mutable n_new_orders : int;
  mutable n_payments : int;
  mutable n_lines : int;
  mutable n_remote_lines : int;
}

let create ~warehouses ~nodes ?(customers_per_district = 300) ?(items_per_warehouse = 1_000)
    rng =
  {
    warehouses;
    nodes;
    customers_per_district;
    items_per_warehouse;
    rng;
    order_seq = 0;
    n_new_orders = 0;
    n_payments = 0;
    n_lines = 0;
    n_remote_lines = 0;
  }

let nodes t = t.nodes
let new_orders t = t.n_new_orders
let payments t = t.n_payments

let remote_line_fraction t =
  if t.n_lines = 0 then 0.0 else float_of_int t.n_remote_lines /. float_of_int t.n_lines

(* Warehouses are striped contiguously across nodes, rows co-located. *)
let home_of_warehouse t w = w * t.nodes / t.warehouses

let warehouses_of_node t home =
  List.filter (fun w -> home_of_warehouse t w = home) (List.init t.warehouses (fun w -> w))

(* ---- key layout (disjoint integer segments per table) ---- *)

let warehouse_key _t w = w
let district_key t w d = t.warehouses + (w * districts_per_wh) + d

let customer_key t w d c =
  t.warehouses
  + (t.warehouses * districts_per_wh)
  + ((((w * districts_per_wh) + d) * t.customers_per_district) + c)

let stock_key t w i =
  t.warehouses
  + (t.warehouses * districts_per_wh)
  + (t.warehouses * districts_per_wh * t.customers_per_district)
  + ((w * t.items_per_warehouse) + i)

let orders_base t =
  t.warehouses
  + (t.warehouses * districts_per_wh)
  + (t.warehouses * districts_per_wh * t.customers_per_district)
  + (t.warehouses * t.items_per_warehouse)

(* Order keys encode their home node so the baseline's static sharding can
   place them on the home warehouse's partition. *)
let fresh_order_key t ~home =
  let k = orders_base t + home + (t.nodes * t.order_seq) in
  t.order_seq <- t.order_seq + 1;
  k

let home_of_key t k =
  if k < t.warehouses then home_of_warehouse t k
  else if k < t.warehouses + (t.warehouses * districts_per_wh) then
    home_of_warehouse t ((k - t.warehouses) / districts_per_wh)
  else if
    k
    < t.warehouses
      + (t.warehouses * districts_per_wh)
      + (t.warehouses * districts_per_wh * t.customers_per_district)
  then begin
    let c = k - t.warehouses - (t.warehouses * districts_per_wh) in
    home_of_warehouse t (c / (districts_per_wh * t.customers_per_district))
  end
  else if k < orders_base t then begin
    let s =
      k - t.warehouses
      - (t.warehouses * districts_per_wh)
      - (t.warehouses * districts_per_wh * t.customers_per_district)
    in
    home_of_warehouse t (s / t.items_per_warehouse)
  end
  else (k - orders_base t) mod t.nodes

(* ---- district record: [next_o_id; ytd; recent orders...] ----
   The embedded recent-order list stands in for the order-id range scans
   of Delivery and Stock-Level. *)

let district_init = [ 1; 0 ]

let district_decode v =
  match Value.to_ints v with
  | next_o_id :: ytd :: recent -> (next_o_id, ytd, recent)
  | _ -> (1, 0, [])

let district_encode (next_o_id, ytd, recent) =
  let recent = if List.length recent > recent_cap then List.filteri (fun i _ -> i < recent_cap) recent else recent in
  Value.of_ints (next_o_id :: ytd :: recent)

(* ---- population ---- *)

let populate t cluster =
  for w = 0 to t.warehouses - 1 do
    let owner = home_of_warehouse t w in
    Cluster.populate cluster ~key:(warehouse_key t w) ~owner (Value.of_ints [ 0 ]);
    for d = 0 to districts_per_wh - 1 do
      Cluster.populate cluster ~key:(district_key t w d) ~owner
        (Value.of_ints district_init);
      for c = 0 to t.customers_per_district - 1 do
        Cluster.populate cluster ~key:(customer_key t w d c) ~owner
          (Value.of_ints [ 1000; 0 ])
      done
    done;
    for i = 0 to t.items_per_warehouse - 1 do
      Cluster.populate cluster ~key:(stock_key t w i) ~owner (Value.of_ints [ 100; 0 ])
    done
  done

(* ---- random pickers ---- *)

let local_warehouse t home =
  match warehouses_of_node t home with
  | [] -> 0
  | ws -> List.nth ws (Rng.int t.rng (List.length ws))

let other_warehouse t w =
  if t.warehouses = 1 then w
  else begin
    let x = Rng.int t.rng (t.warehouses - 1) in
    if x >= w then x + 1 else x
  end

let pick_lines t w =
  let cnt = 5 + Rng.int t.rng 11 in
  List.init cnt (fun _ ->
      let supply_w =
        if Rng.chance t.rng 0.01 then begin
          t.n_remote_lines <- t.n_remote_lines + 1;
          other_warehouse t w
        end
        else w
      in
      t.n_lines <- t.n_lines + 1;
      (supply_w, Rng.int t.rng t.items_per_warehouse))

(* ---- the five transactions as Zeus bodies ---- *)

let seq_iter items f k =
  let rec go = function
    | [] -> k ()
    | x :: rest -> f x (fun () -> go rest)
  in
  go items

let new_order t node ~thread k =
  t.n_new_orders <- t.n_new_orders + 1;
  let home = Node.id node in
  let w = local_warehouse t home in
  let d = Rng.int t.rng districts_per_wh in
  let lines = pick_lines t w in
  let order_key = fresh_order_key t ~home in
  Node.run_write node ~thread ~exec_us:2.0
    ~body:(fun ctx commit ->
      Node.read_write ctx (district_key t w d)
        (fun v ->
          let next_o_id, ytd, recent = district_decode v in
          district_encode (next_o_id + 1, ytd, order_key :: recent))
        (fun _ ->
          seq_iter lines
            (fun (sw, i) k ->
              Node.read_write ctx (stock_key t sw i)
                (fun v ->
                  match Value.to_ints v with
                  | [ qty; ytd ] ->
                    let qty = if qty > 10 then qty - 1 else qty + 91 in
                    Value.of_ints [ qty; ytd + 1 ]
                  | _ -> v)
                (fun _ -> k ()))
            (fun () ->
              Node.insert ctx order_key
                (Value.of_ints (List.map (fun (sw, i) -> (sw * 1_000_000) + i) lines));
              commit ())))
    k

let payment t node ~thread k =
  t.n_payments <- t.n_payments + 1;
  let home = Node.id node in
  let w = local_warehouse t home in
  let d = Rng.int t.rng districts_per_wh in
  (* 15% of payments are for a customer of a remote warehouse *)
  let cw = if Rng.chance t.rng 0.15 then other_warehouse t w else w in
  let c = Rng.int t.rng t.customers_per_district in
  let amount = 1 + Rng.int t.rng 50 in
  Node.run_write node ~thread ~exec_us:1.2
    ~body:(fun ctx commit ->
      Node.read_write ctx (warehouse_key t w)
        (fun v -> Value.of_ints [ Value.to_int v + amount ])
        (fun _ ->
          Node.read_write ctx (district_key t w d)
            (fun v ->
              let next_o_id, ytd, recent = district_decode v in
              district_encode (next_o_id, ytd + amount, recent))
            (fun _ ->
              Node.read_write ctx (customer_key t cw d c)
                (fun v ->
                  match Value.to_ints v with
                  | [ balance; ytd ] -> Value.of_ints [ balance - amount; ytd + amount ]
                  | _ -> v)
                (fun _ -> commit ()))))
    k

let order_status t node ~thread k =
  let home = Node.id node in
  let w = local_warehouse t home in
  let d = Rng.int t.rng districts_per_wh in
  let c = Rng.int t.rng t.customers_per_district in
  Node.run_read node ~thread ~exec_us:0.8
    ~body:(fun ctx commit ->
      Node.read ctx (customer_key t w d c) (fun _ ->
          Node.read ctx (district_key t w d) (fun v ->
              let _, _, recent = district_decode v in
              match recent with
              | order :: _ -> Node.read ctx order (fun _ -> commit ())
              | [] -> commit ())))
    k

let delivery t node ~thread k =
  let home = Node.id node in
  let w = local_warehouse t home in
  let d = Rng.int t.rng districts_per_wh in
  let c = Rng.int t.rng t.customers_per_district in
  Node.run_write node ~thread ~exec_us:1.5
    ~body:(fun ctx commit ->
      (* pop the oldest recent order (stands in for oldest-undelivered) *)
      let delivered = ref None in
      Node.read_write ctx (district_key t w d)
        (fun v ->
          let next_o_id, ytd, recent = district_decode v in
          match List.rev recent with
          | oldest :: rest_rev ->
            delivered := Some oldest;
            district_encode (next_o_id, ytd, List.rev rest_rev)
          | [] -> v)
        (fun _ ->
          let finish () =
            Node.read_write ctx (customer_key t w d c)
              (fun v ->
                match Value.to_ints v with
                | [ balance; ytd ] -> Value.of_ints [ balance + 10; ytd ]
                | _ -> v)
              (fun _ -> commit ())
          in
          match !delivered with
          | Some order -> Node.read_write ctx order (fun v -> v) (fun _ -> finish ())
          | None -> finish ()))
    k

let stock_level t node ~thread k =
  let home = Node.id node in
  let w = local_warehouse t home in
  let d = Rng.int t.rng districts_per_wh in
  Node.run_read node ~thread ~exec_us:1.0
    ~body:(fun ctx commit ->
      Node.read ctx (district_key t w d) (fun _ ->
          let stocks =
            List.init 5 (fun _ -> stock_key t w (Rng.int t.rng t.items_per_warehouse))
          in
          seq_iter stocks
            (fun s k -> Node.read ctx s (fun _ -> k ()))
            (fun () -> commit ())))
    k

let issue t node ~thread k =
  let p = Rng.float t.rng 1.0 in
  if p < 0.45 then new_order t node ~thread k
  else if p < 0.88 then payment t node ~thread k
  else if p < 0.92 then order_status t node ~thread k
  else if p < 0.96 then delivery t node ~thread k
  else stock_level t node ~thread k

(* ---- baseline approximation (key sets only) ---- *)

let gen_spec t ~home =
  let w = local_warehouse t home in
  let d = Rng.int t.rng districts_per_wh in
  let p = Rng.float t.rng 1.0 in
  if p < 0.45 then begin
    let lines = pick_lines t w in
    t.n_new_orders <- t.n_new_orders + 1;
    Spec.write_txn ~payload:48 ~exec_us:2.0
      (district_key t w d
       :: fresh_order_key t ~home
       :: List.map (fun (sw, i) -> stock_key t sw i) lines)
  end
  else if p < 0.88 then begin
    t.n_payments <- t.n_payments + 1;
    let cw = if Rng.chance t.rng 0.15 then other_warehouse t w else w in
    let c = Rng.int t.rng t.customers_per_district in
    Spec.write_txn ~payload:32 ~exec_us:1.2
      [ warehouse_key t w; district_key t w d; customer_key t cw d c ]
  end
  else if p < 0.92 then
    Spec.read_txn ~exec_us:0.8
      [ customer_key t w d (Rng.int t.rng t.customers_per_district); district_key t w d ]
  else if p < 0.96 then
    Spec.write_txn ~payload:32 ~exec_us:1.5
      [ district_key t w d; customer_key t w d (Rng.int t.rng t.customers_per_district) ]
  else
    Spec.read_txn ~exec_us:1.0
      (district_key t w d
      :: List.init 5 (fun _ -> stock_key t w (Rng.int t.rng t.items_per_warehouse)))
