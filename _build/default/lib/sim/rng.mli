(** Deterministic pseudo-random number generation (splitmix64).

    Every stochastic component of the simulator draws from an explicit
    [Rng.t] so that a run is a pure function of its seed.  [split] derives an
    independent stream, which lets concurrent components consume randomness
    without perturbing each other's sequences. *)

type t

val create : int64 -> t
(** [create seed] returns a generator seeded with [seed]. *)

val split : t -> t
(** [split t] returns a new generator whose stream is independent of [t]'s
    subsequent outputs. *)

val int64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)]. [bound] must be positive. *)

val float : t -> float -> float
(** [float t bound] is uniform in [\[0, bound)]. *)

val bool : t -> bool

val chance : t -> float -> bool
(** [chance t p] is [true] with probability [p]. *)

val exponential : t -> mean:float -> float
(** Exponentially distributed value with the given mean. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher-Yates shuffle. *)

val pick : t -> 'a array -> 'a
(** Uniformly random element of a non-empty array. *)

(** Zipf-distributed integers in [\[0, n)] (YCSB-style generator). *)
module Zipf : sig
  type rng := t
  type t

  val create : n:int -> theta:float -> t
  val sample : t -> rng -> int
end
