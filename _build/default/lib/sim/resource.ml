type job = { service : float; k : unit -> unit }

type t = {
  engine : Engine.t;
  servers : int;
  mutable busy : int;
  mutable busy_time : float;
  mutable completed : int;
  waiting : job Queue.t;
}

let create engine ~servers =
  assert (servers > 0);
  { engine; servers; busy = 0; busy_time = 0.0; completed = 0; waiting = Queue.create () }

let servers t = t.servers
let busy t = t.busy
let queue_length t = Queue.length t.waiting
let busy_time t = t.busy_time
let completed t = t.completed

let rec start t job =
  t.busy <- t.busy + 1;
  ignore
    (Engine.schedule t.engine ~after:job.service (fun () ->
         t.busy <- t.busy - 1;
         t.busy_time <- t.busy_time +. job.service;
         t.completed <- t.completed + 1;
         job.k ();
         (* The completion may have enqueued more work; drain if idle capacity. *)
         if t.busy < t.servers && not (Queue.is_empty t.waiting) then
           start t (Queue.pop t.waiting)))

let submit t ~service k =
  let job = { service = (if service < 0.0 then 0.0 else service); k } in
  if t.busy < t.servers then start t job else Queue.push job t.waiting
