type event = {
  time : float;
  seq : int;
  fn : unit -> unit;
  mutable cancelled : bool;
}

type event_id = event

type t = {
  mutable clock : float;
  mutable seq : int;
  mutable live : int;
  mutable dispatched : int;
  queue : event Heap.t;
  root_rng : Rng.t;
}

let leq a b = a.time < b.time || (a.time = b.time && a.seq <= b.seq)

let create ?(seed = 42L) () =
  {
    clock = 0.0;
    seq = 0;
    live = 0;
    dispatched = 0;
    queue = Heap.create ~leq;
    root_rng = Rng.create seed;
  }

let now t = t.clock
let rng t = t.root_rng
let fork_rng t = Rng.split t.root_rng

let schedule_at t ~time fn =
  let time = if time < t.clock then t.clock else time in
  let ev = { time; seq = t.seq; fn; cancelled = false } in
  t.seq <- t.seq + 1;
  t.live <- t.live + 1;
  Heap.push t.queue ev;
  ev

let schedule t ~after fn =
  let after = if after < 0.0 then 0.0 else after in
  schedule_at t ~time:(t.clock +. after) fn

let cancel t ev =
  if not ev.cancelled then begin
    ev.cancelled <- true;
    t.live <- t.live - 1
  end

let pending t = t.live
let events_dispatched t = t.dispatched

let run ?until ?max_events t =
  let budget = ref (match max_events with Some n -> n | None -> max_int) in
  let stop = ref false in
  while not !stop do
    match Heap.peek t.queue with
    | None -> stop := true
    | Some ev when ev.cancelled ->
      ignore (Heap.pop t.queue)
    | Some ev ->
      let past_deadline =
        match until with Some u -> ev.time > u | None -> false
      in
      if past_deadline || !budget <= 0 then stop := true
      else begin
        ignore (Heap.pop t.queue);
        t.live <- t.live - 1;
        t.clock <- ev.time;
        t.dispatched <- t.dispatched + 1;
        decr budget;
        ev.fn ()
      end
  done;
  match until with
  | Some u when t.clock < u && not (Heap.is_empty t.queue) -> t.clock <- u
  | Some u when Heap.is_empty t.queue && t.clock < u -> ()
  | _ -> ()
