lib/sim/rng.mli:
