lib/sim/heap.mli:
