lib/sim/stats.mli: Rng
