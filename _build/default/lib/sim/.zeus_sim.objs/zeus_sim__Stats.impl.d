lib/sim/stats.ml: Array Hashtbl List Option Rng Stdlib
