(** Discrete-event simulation engine.

    The engine owns a virtual clock (in microseconds) and a queue of timed
    callbacks.  All protocol code in this repository is written against this
    engine: "sending a message" or "doing work for [d] µs" schedules a
    callback [d] µs in the virtual future.  Runs are deterministic: two runs
    with the same seed execute the same event sequence. *)

type t

type event_id
(** Handle for cancelling a scheduled event. *)

val create : ?seed:int64 -> unit -> t
(** Fresh engine with clock at 0.  Default seed is 42. *)

val now : t -> float
(** Current virtual time in microseconds. *)

val rng : t -> Rng.t
(** The engine's root random stream. *)

val fork_rng : t -> Rng.t
(** An independent random stream derived from the engine's root stream. *)

val schedule : t -> after:float -> (unit -> unit) -> event_id
(** [schedule t ~after f] runs [f] at [now t +. max after 0.]. Events with
    equal times fire in scheduling order. *)

val schedule_at : t -> time:float -> (unit -> unit) -> event_id
(** Absolute-time variant; times in the past fire "now". *)

val cancel : t -> event_id -> unit
(** Cancelling an already-fired or cancelled event is a no-op. *)

val pending : t -> int
(** Number of scheduled (non-cancelled) events. *)

val run : ?until:float -> ?max_events:int -> t -> unit
(** Dispatch events in time order until the queue drains, the clock passes
    [until], or [max_events] events have fired.  The clock is left at the
    time of the last dispatched event (or [until] if that bound stopped a
    pending queue). *)

val events_dispatched : t -> int
