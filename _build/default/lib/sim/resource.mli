(** FIFO multi-server resource.

    Models a pool of identical servers (e.g. the datastore worker threads of
    one node): jobs are served in arrival order, each occupying one server
    for its service time.  Used to charge protocol-message processing and
    transaction execution to finite CPU capacity, which is what produces
    saturation throughput in the benchmarks. *)

type t

val create : Engine.t -> servers:int -> t
(** [servers] must be positive. *)

val servers : t -> int

val submit : t -> service:float -> (unit -> unit) -> unit
(** [submit t ~service k] enqueues a job taking [service] µs of one server's
    time; [k] runs at completion. *)

val busy : t -> int
(** Servers currently serving a job. *)

val queue_length : t -> int
(** Jobs waiting for a server. *)

val busy_time : t -> float
(** Cumulative server-busy µs (for utilization = busy_time / (servers * elapsed)). *)

val completed : t -> int
