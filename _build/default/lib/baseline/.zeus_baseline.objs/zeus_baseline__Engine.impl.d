lib/baseline/engine.ml: Array Float Hashtbl List Option Profile Zeus_core Zeus_net Zeus_sim Zeus_workload
