lib/baseline/profile.ml:
