lib/baseline/engine.mli: Profile Zeus_core Zeus_sim Zeus_workload
