lib/baseline/profile.mli:
