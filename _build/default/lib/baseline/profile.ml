type t = {
  name : string;
  one_sided_reads : bool;
  combined_lock_validate : bool;
  commit_extra_rtts : int;
  msg_scale : float;
  exec_scale : float;
  read_handler_us : float;
  read_finish_us : float;
}

let fasst =
  {
    name = "FaSST";
    one_sided_reads = false;
    combined_lock_validate = true;
    commit_extra_rtts = 0;
    msg_scale = 1.35;
    exec_scale = 1.0;
    read_handler_us = 0.45;
    read_finish_us = 0.25;
  }

(* FaRM: one-sided reads save remote CPU but its commit takes more serial
   rounds and per-op initiator cost is higher (NIC doorbells, retries);
   FaSST reports ~1.7x FaRM on TATP, which this profile reproduces. *)
let farm =
  {
    name = "FaRM";
    one_sided_reads = true;
    combined_lock_validate = false;
    commit_extra_rtts = 1;
    msg_scale = 2.3;
    exec_scale = 1.0;
    read_handler_us = 0.0;
    read_finish_us = 1.7;
  }

(* DrTM: HTM + leases; remote accesses need lease acquisition and HTM
   fallbacks make the write path dearer on write-heavy mixes. *)
let drtm =
  {
    name = "DrTM";
    one_sided_reads = true;
    combined_lock_validate = false;
    commit_extra_rtts = 1;
    msg_scale = 2.2;
    exec_scale = 1.3;
    read_handler_us = 0.0;
    read_finish_us = 0.8;
  }
