(** Cost/behaviour profiles for the baseline distributed-commit engine.

    The paper compares against published numbers for FaRM, FaSST and DrTM
    (§8: the authors could not run them on their testbed).  We go one step
    further and execute a real OCC + two-phase-commit engine with
    primary-backup replication over the same simulated fabric; these
    profiles capture the structural differences between the three systems
    that matter for throughput — message counts, which side pays CPU for a
    remote read, and extra serial round trips in the commit. *)

type t = {
  name : string;
  one_sided_reads : bool;
      (** FaRM/DrTM: remote reads bypass the remote CPU (RDMA one-sided),
          costing only initiator-side work; FaSST RPCs charge both sides *)
  combined_lock_validate : bool;
      (** FaSST merges lock and validate into one round *)
  commit_extra_rtts : int;
      (** additional serial rounds in commit (e.g. DrTM lease handling) *)
  msg_scale : float;  (** per-message CPU scale vs. the Zeus cost model *)
  exec_scale : float; (** transaction-logic execution-time scale *)
  read_handler_us : float;
      (** server-side work per remotely read key (lookup + marshal);
          zero for one-sided reads *)
  read_finish_us : float;
      (** initiator-side work per remotely read key (unmarshal, version
          checks; FaRM pays more: one-sided reads re-check consistency) *)
}

val fasst : t
val farm : t
val drtm : t
